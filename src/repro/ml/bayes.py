"""BayesNet: discrete Bayesian network classifier, as in WEKA's ``BayesNet``.

WEKA's default ``BayesNet`` discretizes numeric attributes and learns a
network with the K2 hill-climber limited to one parent per node — with
the class as the mandatory parent this is naive Bayes unless an extra
attribute parent improves the score.  We implement exactly that family:

* attributes are discretized with the Fayyad–Irani MDL method;
* each attribute gets the class as parent, plus optionally its single
  best attribute parent (tree-augmented edge) when ``max_parents`` allows
  and the conditional-likelihood score improves;
* conditional probability tables use Laplace smoothing (WEKA's "simple
  estimator" with alpha = 0.5).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_features, check_training_set
from repro.ml.discretize import Discretizer

_ALPHA = 0.5  # WEKA SimpleEstimator default


class BayesNet(Classifier):
    """Discretizing Bayesian-network classifier (K2, <=1 attribute parent).

    Args:
        max_parents: 1 gives naive Bayes; 2 allows one attribute parent
            per attribute in addition to the class (WEKA default).
    """

    supports_sample_weight = True

    def __init__(self, max_parents: int = 2) -> None:
        super().__init__()
        if max_parents not in (1, 2):
            raise ValueError("max_parents must be 1 (naive) or 2 (TAN-style)")
        self.max_parents = max_parents
        self.params = {"max_parents": max_parents}
        self.discretizer_: Discretizer | None = None
        self.class_prior_: np.ndarray | None = None
        self.parents_: list[int | None] = []
        self.cpts_: list[np.ndarray] = []

    # ------------------------------------------------------------------
    @staticmethod
    def _cpt(
        child: np.ndarray,
        n_child: int,
        labels: np.ndarray,
        weights: np.ndarray,
        parent: np.ndarray | None,
        n_parent: int,
    ) -> np.ndarray:
        """Laplace-smoothed CPT P(child | class[, parent]).

        Returns array of shape ``(2, n_parent, n_child)``; ``n_parent`` is
        1 when the attribute has no attribute parent.
        """
        counts = np.zeros((2, n_parent, n_child))
        parent_idx = parent if parent is not None else np.zeros(len(child), dtype=np.intp)
        np.add.at(counts, (labels, parent_idx, child), weights)
        counts += _ALPHA
        return counts / counts.sum(axis=2, keepdims=True)

    def _log_likelihood(
        self,
        child: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray,
        cpt: np.ndarray,
        parent: np.ndarray | None,
    ) -> float:
        parent_idx = parent if parent is not None else np.zeros(len(child), dtype=np.intp)
        probs = cpt[labels, parent_idx, child]
        return float((weights * np.log(probs)).sum())

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "BayesNet":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        self.discretizer_ = Discretizer.fit(features, labels, weights)
        binned = self.discretizer_.transform(features)
        n_bins = self.discretizer_.n_bins

        prior = np.array([weights[labels == 0].sum(), weights[labels == 1].sum()])
        self.class_prior_ = (prior + _ALPHA) / (prior + _ALPHA).sum()

        n_attrs = binned.shape[1]
        self.parents_ = [None] * n_attrs
        self.cpts_ = []
        for j in range(n_attrs):
            child = binned[:, j]
            best_cpt = self._cpt(child, n_bins[j], labels, weights, None, 1)
            best_score = self._log_likelihood(child, labels, weights, best_cpt, None)
            # K2-style penalty: free parameters * 0.5 * log(n)
            penalty_unit = 0.5 * np.log(len(labels))
            best_score -= penalty_unit * 2 * (n_bins[j] - 1)
            if self.max_parents == 2:
                for p in range(n_attrs):
                    if p == j or n_bins[p] <= 1:
                        continue
                    cpt = self._cpt(child, n_bins[j], labels, weights, binned[:, p], n_bins[p])
                    score = self._log_likelihood(child, labels, weights, cpt, binned[:, p])
                    score -= penalty_unit * 2 * n_bins[p] * (n_bins[j] - 1)
                    if score > best_score:
                        best_score = score
                        best_cpt = cpt
                        self.parents_[j] = p
            self.cpts_.append(best_cpt)
        self._binned_train = None  # nothing retained beyond the tables
        self.fitted_ = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        assert self.discretizer_ is not None and self.class_prior_ is not None
        binned = self.discretizer_.transform(features)
        log_post = np.tile(np.log(self.class_prior_), (len(binned), 1))
        zeros = np.zeros(len(binned), dtype=np.intp)
        for j, cpt in enumerate(self.cpts_):
            parent = self.parents_[j]
            parent_idx = binned[:, parent] if parent is not None else zeros
            child = binned[:, j]
            for c in (0, 1):
                log_post[:, c] += np.log(cpt[c, parent_idx, child])
        log_post -= log_post.max(axis=1, keepdims=True)
        post = np.exp(log_post)
        return post / post.sum(axis=1, keepdims=True)

    # -- serialization ---------------------------------------------------
    def export_artifact(self) -> tuple[dict, dict[str, np.ndarray]]:
        self._require_fitted()
        assert self.discretizer_ is not None and self.class_prior_ is not None
        spec = {
            "params": dict(self.params),
            "parents": [p if p is None else int(p) for p in self.parents_],
        }
        arrays: dict[str, np.ndarray] = {"class_prior": self.class_prior_}
        for j, cuts in enumerate(self.discretizer_.cut_points):
            arrays[f"disc_cuts_{j}"] = np.asarray(cuts, dtype=float)
        for j, cpt in enumerate(self.cpts_):
            arrays[f"cpt_{j}"] = cpt
        return spec, arrays

    @classmethod
    def from_artifact(cls, spec: dict, arrays: dict) -> "BayesNet":
        model = cls(**spec["params"])
        parents = spec["parents"]
        n_attrs = len(parents)
        model.discretizer_ = Discretizer(
            cut_points=tuple(
                tuple(float(c) for c in np.asarray(arrays[f"disc_cuts_{j}"]))
                for j in range(n_attrs)
            )
        )
        model.class_prior_ = np.asarray(arrays["class_prior"])
        model.parents_ = [p if p is None else int(p) for p in parents]
        model.cpts_ = [np.asarray(arrays[f"cpt_{j}"]) for j in range(n_attrs)]
        model.fitted_ = True
        return model

    @property
    def network_edges(self) -> list[tuple[int, int]]:
        """Attribute-parent edges learned beyond the class parent."""
        self._require_fitted()
        return [(p, j) for j, p in enumerate(self.parents_) if p is not None]
