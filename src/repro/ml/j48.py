"""J48: the C4.5 decision tree, as in WEKA's ``J48``.

Gain-ratio splits on numeric attributes, minimum two instances per leaf,
and C4.5's pessimistic error pruning at confidence factor 0.25 with
subtree replacement.  (WEKA additionally performs subtree raising; we
implement replacement only — the dominant pruning operation — and note
the simplification in DESIGN.md.)
"""

from __future__ import annotations

import math

import numpy as np

from repro.ml.base import Classifier, check_features, check_training_set, proba_from_counts
from repro.ml.tree import FlatTree, TreeNode, grow_tree


def _z_from_confidence(confidence: float) -> float:
    """Upper-tail normal quantile for C4.5's one-sided confidence bound.

    Inverse normal CDF via the Acklam rational approximation (no scipy
    dependency in the core path).
    """
    p = 1.0 - confidence
    if not 0.0 < p < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    # coefficients of Acklam's approximation
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    plow, phigh = 0.02425, 1 - 0.02425
    if p < plow:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > phigh:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)


def pessimistic_errors(n: float, errors: float, z: float) -> float:
    """C4.5 upper-bound error estimate for a leaf with ``n`` instances.

    Returns the *count* of predicted errors (``n`` times the upper
    confidence limit of the observed error rate).
    """
    if n <= 0:
        return 0.0
    f = errors / n
    z2 = z * z
    bound = (f + z2 / (2 * n) + z * math.sqrt(f / n - f * f / n + z2 / (4 * n * n))) / (1 + z2 / n)
    return n * bound


class J48(Classifier):
    """C4.5 decision tree with pessimistic-error pruning.

    Args:
        confidence: pruning confidence factor (WEKA ``-C``, default 0.25;
            smaller prunes harder).
        min_instances: minimum weighted instances per leaf (WEKA ``-M``).
        unpruned: grow only, skip pruning (WEKA ``-U``).
    """

    supports_sample_weight = True

    def __init__(
        self,
        confidence: float = 0.25,
        min_instances: int = 2,
        unpruned: bool = False,
    ) -> None:
        super().__init__()
        if not 0.0 < confidence < 0.5:
            raise ValueError("confidence must be in (0, 0.5)")
        if min_instances < 1:
            raise ValueError("min_instances must be >= 1")
        self.confidence = confidence
        self.min_instances = min_instances
        self.unpruned = unpruned
        self.params = {
            "confidence": confidence,
            "min_instances": min_instances,
            "unpruned": unpruned,
        }
        self.root_: TreeNode | None = None
        self._flat: FlatTree | None = None
        self._z = _z_from_confidence(confidence)

    # ------------------------------------------------------------------
    def _subtree_errors(self, node: TreeNode) -> float:
        """Pessimistic error estimate of a (sub)tree."""
        if node.is_leaf:
            n = float(node.counts.sum())
            return pessimistic_errors(n, n - float(node.counts.max()), self._z)
        assert node.left is not None and node.right is not None
        return self._subtree_errors(node.left) + self._subtree_errors(node.right)

    def _prune(self, node: TreeNode) -> None:
        """Bottom-up subtree replacement when the leaf bound is no worse."""
        if node.is_leaf:
            return
        assert node.left is not None and node.right is not None
        self._prune(node.left)
        self._prune(node.right)
        n = float(node.counts.sum())
        leaf_estimate = pessimistic_errors(n, n - float(node.counts.max()), self._z)
        if leaf_estimate <= self._subtree_errors(node) + 0.1:
            node.make_leaf()

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "J48":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        self.root_ = grow_tree(
            features, labels, weights,
            min_leaf_weight=float(self.min_instances),
            use_gain_ratio=True,
        )
        if not self.unpruned:
            self._prune(self.root_)
        # flatten the pruned tree once; prediction descends the arrays
        self._flat = FlatTree(self.root_)
        self.fitted_ = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        assert self._flat is not None
        return proba_from_counts(self._flat.leaf_counts(features))

    # -- serialization ---------------------------------------------------
    def export_artifact(self) -> tuple[dict, dict[str, np.ndarray]]:
        self._require_fitted()
        assert self._flat is not None
        flat = self._flat
        return {"params": dict(self.params)}, {
            "tree_attribute": flat.attribute,
            "tree_threshold": flat.threshold,
            "tree_left": flat.left,
            "tree_right": flat.right,
            "tree_counts": flat.counts,
        }

    @classmethod
    def from_artifact(cls, spec: dict, arrays: dict) -> "J48":
        model = cls(**spec["params"])
        model._flat = FlatTree.from_arrays(
            arrays["tree_attribute"],
            arrays["tree_threshold"],
            arrays["tree_left"],
            arrays["tree_right"],
            arrays["tree_counts"],
        )
        model.root_ = model._flat.nodes[0]
        model.fitted_ = True
        return model

    # -- structure, for the hardware model and reports ------------------
    @property
    def tree_size(self) -> int:
        """Total node count of the pruned tree."""
        self._require_fitted()
        assert self.root_ is not None
        return self.root_.n_nodes()

    @property
    def n_leaves(self) -> int:
        self._require_fitted()
        assert self.root_ is not None
        return self.root_.n_leaves()

    @property
    def depth(self) -> int:
        self._require_fitted()
        assert self.root_ is not None
        return self.root_.depth()
