"""Supervised discretization (Fayyad & Irani MDL), as used by WEKA.

WEKA's ``BayesNet`` (and, internally, ``OneR``-style learners) operate on
discretized attributes.  This module implements the standard
entropy-based binning with the Minimum Description Length stopping
criterion: cut points are inserted recursively at the class-entropy
minimizing boundary while the MDL criterion accepts them.

Weighted instances are supported so the discretizer composes with
boosting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import fitmode

_LOG2 = math.log(2.0)


def _entropy(class_weights: np.ndarray) -> float:
    """Entropy in bits of a (possibly weighted) class count vector."""
    total = class_weights.sum()
    if total <= 0:
        return 0.0
    p = class_weights[class_weights > 0] / total
    return float(-(p * np.log(p)).sum() / _LOG2)


def _class_counts(labels: np.ndarray, weights: np.ndarray, n_classes: int) -> np.ndarray:
    counts = np.zeros(n_classes)
    for c in range(n_classes):
        counts[c] = weights[labels == c].sum()
    return counts


def _best_cut_scalar(
    values: np.ndarray, labels: np.ndarray, weights: np.ndarray, n_classes: int
) -> tuple[float, float, np.ndarray, np.ndarray] | None:
    """Per-candidate boundary scan (pre-vectorization reference).

    One Python iteration — two :func:`_entropy` calls — per candidate
    boundary.  Retained as the differential reference for
    :func:`_best_cut_batch`.
    """
    order = np.argsort(values, kind="stable")
    v, y, w = values[order], labels[order], weights[order]
    # candidate cut between i and i+1 where value changes
    change = np.flatnonzero(np.diff(v) > 0)
    if change.size == 0:
        return None
    onehot = np.zeros((len(y), n_classes))
    onehot[np.arange(len(y)), y] = w
    left_counts = np.cumsum(onehot, axis=0)
    total_counts = left_counts[-1]
    total = total_counts.sum()
    best = None
    for i in change:
        left = left_counts[i]
        right = total_counts - left
        wl, wr = left.sum(), right.sum()
        if wl <= 0 or wr <= 0:
            continue
        score = (wl * _entropy(left) + wr * _entropy(right)) / total
        if best is None or score < best[1]:
            cut = (v[i] + v[i + 1]) / 2.0
            best = (cut, score, left, right)
    return best


def _entropy_rows(counts: np.ndarray, mass: np.ndarray) -> np.ndarray:
    """Row-wise :func:`_entropy` over a ``(k, n_classes)`` count matrix.

    Zero classes contribute an exact ``0.0`` term, matching the scalar
    filtered sum; rows with zero mass get entropy ``0.0``.  Bit-identical
    to per-row :func:`_entropy` for the binary problems this repo trains
    (term-by-term addition equals the filtered sum when ``n_classes``
    stays below numpy's pairwise-summation block size).
    """
    safe_mass = np.where(mass > 0, mass, 1.0)
    p = counts / safe_mass[:, None]
    positive = counts > 0
    safe_p = np.where(positive, p, 1.0)
    terms = np.where(positive, safe_p * np.log(safe_p), 0.0)
    ent = -(terms.sum(axis=1)) / _LOG2
    return np.where(mass > 0, ent, 0.0)


def _best_cut_batch(
    values: np.ndarray, labels: np.ndarray, weights: np.ndarray, n_classes: int
) -> tuple[float, float, np.ndarray, np.ndarray] | None:
    """Vectorized boundary scan: every candidate scored simultaneously.

    Same sort/cumulative-count prologue as the scalar reference, then the
    split scores of *all* candidate boundaries come from one row-wise
    entropy evaluation; a first-argmin replicates the reference's strict
    ``<`` ("keep the earliest minimum") selection.
    """
    order = np.argsort(values, kind="stable")
    v, y, w = values[order], labels[order], weights[order]
    change = np.flatnonzero(np.diff(v) > 0)
    if change.size == 0:
        return None
    onehot = np.zeros((len(y), n_classes))
    onehot[np.arange(len(y)), y] = w
    left_counts = np.cumsum(onehot, axis=0)
    total_counts = left_counts[-1]
    total = total_counts.sum()

    left = left_counts[change]  # (k, n_classes)
    right = total_counts - left
    wl = left.sum(axis=1)
    wr = right.sum(axis=1)
    valid = (wl > 0) & (wr > 0)
    if not valid.any():
        return None
    scores = (wl * _entropy_rows(left, wl) + wr * _entropy_rows(right, wr)) / total
    scores = np.where(valid, scores, np.inf)
    b = int(np.argmin(scores))
    i = int(change[b])
    cut = (v[i] + v[i + 1]) / 2.0
    return cut, float(scores[b]), left[b], right[b]


def _best_cut(
    values: np.ndarray, labels: np.ndarray, weights: np.ndarray, n_classes: int
) -> tuple[float, float, np.ndarray, np.ndarray] | None:
    """Find the boundary minimizing weighted class entropy, or None.

    Only *boundary points* (between differently-labelled runs) are
    candidates, per Fayyad & Irani's theorem.
    """
    if fitmode.scalar_fit_enabled():
        return _best_cut_scalar(values, labels, weights, n_classes)
    return _best_cut_batch(values, labels, weights, n_classes)


def _mdl_accepts(
    counts: np.ndarray, left: np.ndarray, right: np.ndarray, split_entropy: float
) -> bool:
    """Fayyad–Irani MDL criterion for accepting a cut point."""
    n = counts.sum()
    if n <= 0:
        return False
    ent = _entropy(counts)
    gain = ent - split_entropy
    k = int((counts > 0).sum())
    k_left = int((left > 0).sum())
    k_right = int((right > 0).sum())
    delta = (
        math.log(3.0**k - 2.0) / _LOG2
        - (k * ent - k_left * _entropy(left) - k_right * _entropy(right))
    )
    threshold = (math.log(max(n - 1.0, 1.0)) / _LOG2 + delta) / n
    return gain > threshold


def mdl_cut_points(
    values: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray | None = None,
    n_classes: int = 2,
    max_depth: int = 12,
) -> list[float]:
    """Recursive MDL discretization of one numeric attribute.

    Returns:
        Sorted cut points; an empty list means the attribute carries no
        MDL-significant class information (WEKA then makes it one bin).
    """
    values = np.asarray(values, dtype=float)
    labels = np.asarray(labels, dtype=np.intp)
    if weights is None:
        weights = np.ones(len(values))

    cuts: list[float] = []

    def recurse(mask: np.ndarray, depth: int) -> None:
        if depth >= max_depth or mask.sum() < 4:
            return
        v, y, w = values[mask], labels[mask], weights[mask]
        found = _best_cut(v, y, w, n_classes)
        if found is None:
            return
        cut, score, left_counts, right_counts = found
        counts = _class_counts(y, w, n_classes)
        if not _mdl_accepts(counts, left_counts, right_counts, score):
            return
        cuts.append(cut)
        recurse(mask & (values <= cut), depth + 1)
        recurse(mask & (values > cut), depth + 1)

    recurse(np.ones(len(values), dtype=bool), 0)
    return sorted(cuts)


@dataclass(frozen=True)
class Discretizer:
    """Fitted per-attribute MDL discretizer.

    Attributes:
        cut_points: for each attribute, its sorted cut points (possibly
            empty, collapsing the attribute to a single bin).
    """

    cut_points: tuple[tuple[float, ...], ...]

    @classmethod
    def fit(
        cls,
        features: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> "Discretizer":
        """Learn cut points for every attribute of a training matrix."""
        features = np.asarray(features, dtype=float)
        cuts = tuple(
            tuple(mdl_cut_points(features[:, j], labels, weights))
            for j in range(features.shape[1])
        )
        return cls(cut_points=cuts)

    @property
    def n_bins(self) -> tuple[int, ...]:
        """Number of bins per attribute (``len(cuts) + 1``)."""
        return tuple(len(c) + 1 for c in self.cut_points)

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Map numeric features to integer bin indices."""
        features = np.asarray(features, dtype=float)
        if features.shape[1] != len(self.cut_points):
            raise ValueError("feature count does not match fitted discretizer")
        binned = np.zeros(features.shape, dtype=np.intp)
        for j, cuts in enumerate(self.cut_points):
            if cuts:
                binned[:, j] = np.searchsorted(np.asarray(cuts), features[:, j], side="right")
        return binned


def equal_frequency_cuts(values: np.ndarray, n_bins: int) -> list[float]:
    """Unsupervised equal-frequency cut points (fallback/baseline binning)."""
    if n_bins < 2:
        return []
    quantiles = np.quantile(np.asarray(values, dtype=float), np.linspace(0, 1, n_bins + 1)[1:-1])
    return sorted(set(float(q) for q in quantiles))
