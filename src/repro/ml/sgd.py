"""SGD: linear model trained by stochastic gradient descent (WEKA ``SGD``).

WEKA's ``SGD`` defaults to hinge loss (a linear SVM) with learning rate
0.01, L2 regularization 1e-4, 500 epochs, on normalized inputs.  The
paper's SGD rows are the weakest general detector (AUC 0.74 at 16 HPCs)
— an aggressively regularized linear boundary underfits the multimodal
malware distribution, which is exactly what makes it a good showcase for
boosting.

WEKA trains online (one weight update per instance); like the MLP, this
implementation uses mini-batches for speed: each batch computes every
row's margin against the weights *frozen at the batch start*, applies the
L2 decay once (``decay ** batch_len``, the compounding of the per-row
decays), and accumulates all row steps in a single rank-1 aggregation.
On the corpora this repo trains, ~90% of hinge rows violate the margin
every epoch, so per-row margin freshness changes little — the batch
approximation tracks the online trajectory closely while turning ~n
sequential scalar updates per epoch into ~n / batch_size BLAS calls.

Scores are calibrated into probabilities with a logistic link on the
margin, so ROC analysis gets a graded score rather than a hard label.
"""

from __future__ import annotations

import numpy as np

from repro import fitmode
from repro.ml.base import Classifier, check_features, check_training_set
from repro.ml.scaling import StandardScaler


def _margins(xb: np.ndarray, w: np.ndarray, b: float) -> np.ndarray:
    """Raw scores of a batch against frozen weights (shared BLAS matvec).

    Both fit paths call this, so gemv-vs-ddot rounding differences can
    never leak into the differential comparison.
    """
    return xb @ w + b


def _apply_update(w: np.ndarray, coef: np.ndarray, xb: np.ndarray) -> float:
    """Accumulate all row steps of a batch: ``w += coef @ xb``.

    Returns the bias increment ``sum(coef)``.  Shared by both fit paths
    for the same reason as :func:`_margins`.
    """
    w += coef @ xb
    return float(np.sum(coef))


class SGD(Classifier):
    """Hinge-loss linear classifier trained by mini-batch SGD.

    Args:
        learning_rate: step size (WEKA ``-L`` 0.01).
        reg_lambda: L2 penalty (WEKA ``-R`` 1e-4).
        epochs: passes over the shuffled data (WEKA ``-E`` 500).
        loss: ``"hinge"`` (default, SVM) or ``"logistic"``.
        batch_size: mini-batch size approximating WEKA's online updates.
        seed: shuffle seed.
    """

    supports_sample_weight = True

    def __init__(
        self,
        learning_rate: float = 0.01,
        reg_lambda: float = 1e-4,
        epochs: int = 500,
        loss: str = "hinge",
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if reg_lambda < 0:
            raise ValueError("reg_lambda must be non-negative")
        if epochs < 1:
            raise ValueError("epochs must be positive")
        if loss not in ("hinge", "logistic"):
            raise ValueError(f"unknown loss {loss!r}")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.learning_rate = learning_rate
        self.reg_lambda = reg_lambda
        self.epochs = epochs
        self.loss = loss
        self.batch_size = batch_size
        self.seed = seed
        self.params = {
            "learning_rate": learning_rate,
            "reg_lambda": reg_lambda,
            "epochs": epochs,
            "loss": loss,
            "batch_size": batch_size,
            "seed": seed,
        }
        self.scaler_: StandardScaler | None = None
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "SGD":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        self.scaler_ = StandardScaler.fit(features)
        x = self.scaler_.transform(features)
        y = labels * 2.0 - 1.0  # {-1, +1}
        rng = np.random.default_rng(self.seed)
        rel_weight = weights / weights.mean()
        if fitmode.scalar_fit_enabled():
            w, b = self._fit_scalar(x, y, rel_weight, rng)
        else:
            w, b = self._fit_fast(x, y, rel_weight, rng)
        self.weights_ = w
        self.bias_ = float(b)
        self.fitted_ = True
        return self

    def _fit_scalar(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rel_weight: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float]:
        """Per-row Python step assembly (differential reference).

        Implements the identical mini-batch protocol as :meth:`_fit_fast`
        — frozen-weight batch margins via :func:`_margins`, one combined
        decay, one rank-1 aggregation via :func:`_apply_update` — but the
        per-row step coefficients are decided and computed one Python
        iteration at a time.
        """
        n, d = x.shape
        w = np.zeros(d)
        b = 0.0
        lr = self.learning_rate
        bs = self.batch_size
        decay = 1.0 - lr * self.reg_lambda
        decay_full = decay**bs
        hinge = self.loss == "hinge"
        for _ in range(self.epochs):
            order = rng.permutation(n)
            xo, yo, ro = x[order], y[order], rel_weight[order]
            for start in range(0, n, bs):
                stop = start + bs
                xb, yb, rb = xo[start:stop], yo[start:stop], ro[start:stop]
                m = yb * _margins(xb, w, b)
                length = len(xb)
                w *= decay_full if length == bs else decay**length
                coef = np.zeros(length)
                for i in range(length):
                    if hinge:
                        if m[i] < 1.0:
                            coef[i] = lr * rb[i] * yb[i]
                    else:
                        grad = -yb[i] / (1.0 + np.exp(m[i]))
                        coef[i] = -(lr * rb[i] * grad)
                b += _apply_update(w, coef, xb)
        return w, b

    def _fit_fast(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rel_weight: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float]:
        """Vectorized mini-batch loop, bit-identical to :meth:`_fit_scalar`.

        Row steps become one ``np.where`` (hinge) or one vectorized
        logistic gradient; ``np.exp`` evaluates element-wise identically
        on arrays and scalars, so the logistic coefficients match the
        reference's per-row arithmetic bitwise.
        """
        n, d = x.shape
        w = np.zeros(d)
        b = 0.0
        lr = self.learning_rate
        bs = self.batch_size
        decay = 1.0 - lr * self.reg_lambda
        decay_full = decay**bs
        hinge = self.loss == "hinge"
        for _ in range(self.epochs):
            order = rng.permutation(n)
            xo, yo, ro = x[order], y[order], rel_weight[order]
            for start in range(0, n, bs):
                stop = start + bs
                xb, yb, rb = xo[start:stop], yo[start:stop], ro[start:stop]
                m = yb * _margins(xb, w, b)
                length = len(xb)
                w *= decay_full if length == bs else decay**length
                if hinge:
                    coef = np.where(m < 1.0, lr * rb * yb, 0.0)
                else:
                    grad = -yb / (1.0 + np.exp(m))
                    coef = -(lr * rb * grad)
                b += _apply_update(w, coef, xb)
        return w, b

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed margin; positive means malware."""
        self._require_fitted()
        features = check_features(features)
        assert self.scaler_ is not None and self.weights_ is not None
        return self.scaler_.transform(features) @ self.weights_ + self.bias_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        margin = self.decision_function(features)
        p1 = 1.0 / (1.0 + np.exp(-np.clip(margin, -35, 35)))
        return np.column_stack([1.0 - p1, p1])

    # -- serialization ---------------------------------------------------
    def export_artifact(self) -> tuple[dict, dict[str, np.ndarray]]:
        self._require_fitted()
        assert self.scaler_ is not None and self.weights_ is not None
        spec = {"params": dict(self.params), "bias": float(self.bias_)}
        return spec, {
            "scaler_mean": self.scaler_.mean,
            "scaler_scale": self.scaler_.scale,
            "weights": self.weights_,
        }

    @classmethod
    def from_artifact(cls, spec: dict, arrays: dict) -> "SGD":
        model = cls(**spec["params"])
        model.scaler_ = StandardScaler(
            mean=np.asarray(arrays["scaler_mean"]),
            scale=np.asarray(arrays["scaler_scale"]),
        )
        model.weights_ = np.asarray(arrays["weights"])
        model.bias_ = float(spec["bias"])
        model.fitted_ = True
        return model

    @property
    def n_weights(self) -> int:
        """Weight count incl. bias (hardware multiply-accumulate chain)."""
        self._require_fitted()
        assert self.weights_ is not None
        return self.weights_.size + 1
