"""SGD: linear model trained by stochastic gradient descent (WEKA ``SGD``).

WEKA's ``SGD`` defaults to hinge loss (a linear SVM) with learning rate
0.01, L2 regularization 1e-4, 500 epochs, on normalized inputs.  The
paper's SGD rows are the weakest general detector (AUC 0.74 at 16 HPCs)
— an aggressively regularized linear boundary underfits the multimodal
malware distribution, which is exactly what makes it a good showcase for
boosting.

Scores are calibrated into probabilities with a logistic link on the
margin, so ROC analysis gets a graded score rather than a hard label.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_features, check_training_set
from repro.ml.scaling import StandardScaler


class SGD(Classifier):
    """Hinge-loss linear classifier trained by SGD.

    Args:
        learning_rate: step size (WEKA ``-L`` 0.01).
        reg_lambda: L2 penalty (WEKA ``-R`` 1e-4).
        epochs: passes over the shuffled data (WEKA ``-E`` 500).
        loss: ``"hinge"`` (default, SVM) or ``"logistic"``.
        seed: shuffle seed.
    """

    supports_sample_weight = True

    def __init__(
        self,
        learning_rate: float = 0.01,
        reg_lambda: float = 1e-4,
        epochs: int = 500,
        loss: str = "hinge",
        seed: int = 0,
    ) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if reg_lambda < 0:
            raise ValueError("reg_lambda must be non-negative")
        if epochs < 1:
            raise ValueError("epochs must be positive")
        if loss not in ("hinge", "logistic"):
            raise ValueError(f"unknown loss {loss!r}")
        self.learning_rate = learning_rate
        self.reg_lambda = reg_lambda
        self.epochs = epochs
        self.loss = loss
        self.seed = seed
        self.params = {
            "learning_rate": learning_rate,
            "reg_lambda": reg_lambda,
            "epochs": epochs,
            "loss": loss,
            "seed": seed,
        }
        self.scaler_: StandardScaler | None = None
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "SGD":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        self.scaler_ = StandardScaler.fit(features)
        x = self.scaler_.transform(features)
        y = labels * 2.0 - 1.0  # {-1, +1}
        n, d = x.shape
        rng = np.random.default_rng(self.seed)
        w = np.zeros(d)
        b = 0.0
        lr = self.learning_rate
        rel_weight = weights / weights.mean()
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                margin = y[i] * (x[i] @ w + b)
                w *= 1.0 - lr * self.reg_lambda
                if self.loss == "hinge":
                    if margin < 1.0:
                        step = lr * rel_weight[i] * y[i]
                        w += step * x[i]
                        b += step
                else:
                    grad = -y[i] / (1.0 + np.exp(margin))
                    step = lr * rel_weight[i] * grad
                    w -= step * x[i]
                    b -= step
        self.weights_ = w
        self.bias_ = float(b)
        self.fitted_ = True
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed margin; positive means malware."""
        self._require_fitted()
        features = check_features(features)
        assert self.scaler_ is not None and self.weights_ is not None
        return self.scaler_.transform(features) @ self.weights_ + self.bias_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        margin = self.decision_function(features)
        p1 = 1.0 / (1.0 + np.exp(-np.clip(margin, -35, 35)))
        return np.column_stack([1.0 - p1, p1])

    @property
    def n_weights(self) -> int:
        """Weight count incl. bias (hardware multiply-accumulate chain)."""
        self._require_fitted()
        assert self.weights_ is not None
        return self.weights_.size + 1
