"""K-nearest neighbours — the detector of Demme et al. (ISCA 2013).

The first HPC-based malware detection study (paper §5, reference [3])
reported strong offline results with KNN and neural networks.  KNN's
per-query cost is what makes it unattractive for run-time hardware
detection (it must store and scan the training set), which is exactly
the contrast the paper draws; implementing it lets the benchmarks show
that trade-off rather than assert it.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_features, check_training_set
from repro.ml.scaling import StandardScaler


class KNearestNeighbors(Classifier):
    """Distance-weighted k-NN on standardized features.

    Args:
        k: neighbourhood size (Demme et al. report k in the 5-10 range).
        weighted: weight votes by inverse distance, as WEKA's IBk ``-I``.
    """

    supports_sample_weight = False

    def __init__(self, k: int = 5, weighted: bool = True) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.weighted = weighted
        self.params = {"k": k, "weighted": weighted}
        self.scaler_: StandardScaler | None = None
        self.train_x_: np.ndarray | None = None
        self.train_y_: np.ndarray | None = None

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "KNearestNeighbors":
        features, labels, _ = check_training_set(features, labels, sample_weight)
        self.scaler_ = StandardScaler.fit(features)
        self.train_x_ = self.scaler_.transform(features)
        self.train_y_ = labels
        self.fitted_ = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        assert self.scaler_ is not None
        assert self.train_x_ is not None and self.train_y_ is not None
        x = self.scaler_.transform(features)
        k = min(self.k, self.train_x_.shape[0])
        out = np.zeros((x.shape[0], 2))
        # chunked distance computation keeps memory bounded
        for start in range(0, x.shape[0], 256):
            block = x[start : start + 256]
            d2 = (
                np.sum(block**2, axis=1)[:, None]
                - 2.0 * block @ self.train_x_.T
                + np.sum(self.train_x_**2, axis=1)[None, :]
            )
            nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
            for i in range(block.shape[0]):
                idx = nearest[i]
                if self.weighted:
                    votes = 1.0 / (np.sqrt(np.maximum(d2[i, idx], 0.0)) + 1e-9)
                else:
                    votes = np.ones(k)
                for label, vote in zip(self.train_y_[idx], votes):
                    out[start + i, label] += vote
        totals = out.sum(axis=1, keepdims=True)
        return out / np.where(totals > 0, totals, 1.0)

    @property
    def n_stored(self) -> int:
        """Training instances the deployed model must keep (its cost)."""
        self._require_fitted()
        assert self.train_x_ is not None
        return self.train_x_.shape[0]
