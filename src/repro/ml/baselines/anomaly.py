"""Unsupervised anomaly detection — Tang et al. / Garcia-Serrano style.

The paper's related work (§5, references [5, 15]) detects exploitation
by modelling *benign* HPC behaviour only and flagging deviations.  We
implement the standard density-estimation formulation: fit a Gaussian
mixture (diagonal covariance, EM) to benign training windows in log
space and score test windows by negative log-likelihood; windows less
likely than a benign-quantile threshold are flagged malicious.

The classifier API is kept: ``fit`` receives both classes but *uses only
the benign rows*, which is the method's defining property (and its
advantage against novel malware — there is nothing malware-specific to
overfit).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_features, check_training_set

_EPS = 1e-6


class GaussianAnomalyDetector(Classifier):
    """Benign-only Gaussian-mixture density model with quantile threshold.

    Args:
        n_components: mixture components (benign behaviour is multimodal
            across application archetypes).
        contamination: benign-quantile placed at the decision threshold —
            the expected benign false-positive rate.
        max_iterations: EM iterations.
        seed: initialization seed.
    """

    supports_sample_weight = False

    def __init__(
        self,
        n_components: int = 6,
        contamination: float = 0.05,
        max_iterations: int = 50,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_components < 1:
            raise ValueError("n_components must be positive")
        if not 0.0 < contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        self.n_components = n_components
        self.contamination = contamination
        self.max_iterations = max_iterations
        self.seed = seed
        self.params = {
            "n_components": n_components,
            "contamination": contamination,
            "max_iterations": max_iterations,
            "seed": seed,
        }
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None
        self.mixture_weights_: np.ndarray | None = None
        self.threshold_: float = 0.0
        self._log_mu: np.ndarray | None = None
        self._log_sigma: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _transform(self, features: np.ndarray) -> np.ndarray:
        assert self._log_mu is not None and self._log_sigma is not None
        return (np.log1p(np.maximum(features, 0.0)) - self._log_mu) / self._log_sigma

    def _log_density(self, x: np.ndarray) -> np.ndarray:
        """Per-row mixture log-density."""
        assert self.means_ is not None and self.variances_ is not None
        assert self.mixture_weights_ is not None
        parts = []
        for k in range(self.means_.shape[0]):
            diff = x - self.means_[k]
            var = self.variances_[k]
            log_norm = -0.5 * np.sum(np.log(2.0 * np.pi * var))
            parts.append(
                np.log(self.mixture_weights_[k] + _EPS)
                + log_norm
                - 0.5 * np.sum(diff * diff / var, axis=1)
            )
        stacked = np.vstack(parts)
        peak = stacked.max(axis=0)
        return peak + np.log(np.exp(stacked - peak).sum(axis=0))

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "GaussianAnomalyDetector":
        features, labels, _ = check_training_set(features, labels, sample_weight)
        benign = features[labels == 0]
        if benign.shape[0] < self.n_components:
            raise ValueError("not enough benign samples for the mixture size")
        logged = np.log1p(np.maximum(benign, 0.0))
        self._log_mu = logged.mean(axis=0)
        self._log_sigma = np.where(logged.std(axis=0) > 0, logged.std(axis=0), 1.0)
        x = (logged - self._log_mu) / self._log_sigma

        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        k = self.n_components
        means = x[rng.choice(n, size=k, replace=False)]
        variances = np.ones((k, d))
        mix = np.full(k, 1.0 / k)
        for _ in range(self.max_iterations):
            # E step
            logp = np.zeros((k, n))
            for j in range(k):
                diff = x - means[j]
                logp[j] = (
                    np.log(mix[j] + _EPS)
                    - 0.5 * np.sum(np.log(2.0 * np.pi * variances[j]))
                    - 0.5 * np.sum(diff * diff / variances[j], axis=1)
                )
            peak = logp.max(axis=0)
            resp = np.exp(logp - peak)
            resp /= resp.sum(axis=0)
            # M step
            mass = resp.sum(axis=1) + _EPS
            mix = mass / mass.sum()
            for j in range(k):
                means[j] = (resp[j][:, None] * x).sum(axis=0) / mass[j]
                diff = x - means[j]
                variances[j] = (resp[j][:, None] * diff * diff).sum(axis=0) / mass[j]
                variances[j] = np.maximum(variances[j], 1e-3)
        self.means_, self.variances_, self.mixture_weights_ = means, variances, mix
        self.fitted_ = True
        benign_scores = -self._log_density(x)
        self.threshold_ = float(np.quantile(benign_scores, 1.0 - self.contamination))
        return self

    def anomaly_scores(self, features: np.ndarray) -> np.ndarray:
        """Negative benign log-likelihood; higher = more anomalous."""
        self._require_fitted()
        features = check_features(features)
        return -self._log_density(self._transform(features))

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        scores = self.anomaly_scores(features)
        # squash the threshold-centred score into a probability
        p1 = 1.0 / (1.0 + np.exp(-np.clip(scores - self.threshold_, -35, 35)))
        return np.column_stack([1.0 - p1, p1])
