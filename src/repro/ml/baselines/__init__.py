"""Related-work baseline detectors (paper §5).

* :class:`LogisticRegression` — Khasawneh et al. (RAID 2015), ref [11].
* :class:`KNearestNeighbors` — Demme et al. (ISCA 2013), ref [3].
* :class:`GaussianAnomalyDetector` — Tang et al. / Garcia-Serrano et
  al. (refs [15], [5]): unsupervised benign-behaviour modelling.
"""

from repro.ml.baselines.anomaly import GaussianAnomalyDetector
from repro.ml.baselines.knn import KNearestNeighbors
from repro.ml.baselines.logistic import LogisticRegression

__all__ = [
    "GaussianAnomalyDetector",
    "KNearestNeighbors",
    "LogisticRegression",
]
