"""Logistic regression — the detector of Khasawneh et al. (RAID 2015).

The paper's related work (§5, reference [11]) builds specialized
hardware malware detectors from logistic regression.  We implement it
with full-batch Newton–Raphson (IRLS) on standardized features, which
converges in a handful of iterations on the HPC feature counts used
here and yields well-calibrated probabilities for ROC analysis.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_features, check_training_set
from repro.ml.scaling import StandardScaler


class LogisticRegression(Classifier):
    """L2-regularized logistic regression trained by IRLS.

    Args:
        reg_lambda: L2 penalty on the weights (not the intercept).
        max_iterations: Newton steps (IRLS converges fast; 25 is ample).
        tol: stop when the largest weight update falls below this.
    """

    supports_sample_weight = True

    def __init__(
        self,
        reg_lambda: float = 1e-3,
        max_iterations: int = 25,
        tol: float = 1e-6,
    ) -> None:
        super().__init__()
        if reg_lambda < 0:
            raise ValueError("reg_lambda must be non-negative")
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.reg_lambda = reg_lambda
        self.max_iterations = max_iterations
        self.tol = tol
        self.params = {
            "reg_lambda": reg_lambda,
            "max_iterations": max_iterations,
            "tol": tol,
        }
        self.scaler_: StandardScaler | None = None
        self.weights_: np.ndarray | None = None  # includes intercept at [0]
        self.n_iterations_: int = 0

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LogisticRegression":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        self.scaler_ = StandardScaler.fit(features)
        x = np.column_stack([np.ones(len(labels)), self.scaler_.transform(features)])
        y = labels.astype(float)
        beta = np.zeros(x.shape[1])
        ridge = np.eye(x.shape[1]) * self.reg_lambda
        ridge[0, 0] = 0.0  # do not penalize the intercept
        for iteration in range(self.max_iterations):
            z = np.clip(x @ beta, -35, 35)
            p = 1.0 / (1.0 + np.exp(-z))
            w_irls = np.maximum(p * (1.0 - p), 1e-9) * weights
            gradient = x.T @ (weights * (y - p)) - ridge @ beta
            hessian = (x.T * w_irls) @ x + ridge
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hessian, gradient, rcond=None)[0]
            beta += step
            self.n_iterations_ = iteration + 1
            if np.max(np.abs(step)) < self.tol:
                break
        self.weights_ = beta
        self.fitted_ = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        assert self.scaler_ is not None and self.weights_ is not None
        x = np.column_stack([np.ones(features.shape[0]), self.scaler_.transform(features)])
        z = np.clip(x @ self.weights_, -35, 35)
        p1 = 1.0 / (1.0 + np.exp(-z))
        return np.column_stack([1.0 - p1, p1])

    @property
    def coefficients(self) -> np.ndarray:
        """Feature weights (excluding the intercept), standardized space."""
        self._require_fitted()
        assert self.weights_ is not None
        return self.weights_[1:]
