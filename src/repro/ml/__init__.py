"""From-scratch implementations of the paper's eight WEKA classifiers,
the two ensemble meta-learners, and the evaluation machinery.

Base learners (paper Figure 2): :class:`BayesNet`, :class:`J48`,
:class:`JRip`, :class:`MLP`, :class:`OneR`, :class:`REPTree`,
:class:`SGD`, :class:`SMO`.  Ensembles: :class:`AdaBoostM1`,
:class:`Bagging`.
"""

from repro.ml.base import (
    ArtifactError,
    Classifier,
    NotFittedError,
    classifier_from_artifact,
    export_classifier,
)
from repro.ml.baselines import (
    GaussianAnomalyDetector,
    KNearestNeighbors,
    LogisticRegression,
)
from repro.ml.bayes import BayesNet
from repro.ml.discretize import Discretizer, equal_frequency_cuts, mdl_cut_points
from repro.ml.ensemble import AdaBoostM1, Bagging, VotingEnsemble
from repro.ml.j48 import J48
from repro.ml.jrip import JRip
from repro.ml.metrics import (
    ClassificationReport,
    DetectorScores,
    acc_times_auc,
    accuracy,
    classification_report,
    confusion_matrix,
    evaluate_detector,
    roc_auc,
    roc_curve,
)
from repro.ml.mlp import MLP
from repro.ml.oner import OneR
from repro.ml.reptree import REPTree
from repro.ml.scaling import StandardScaler
from repro.ml.sgd import SGD
from repro.ml.smo import SMO
from repro.ml.stats import (
    BootstrapCI,
    McNemarResult,
    bootstrap_metric_ci,
    mcnemar_test,
)
from repro.ml.validation import (
    SplitResult,
    app_level_kfold,
    app_level_split,
    sample_level_split,
)

#: The paper's eight general classifiers, by WEKA name.
BASE_CLASSIFIERS: dict[str, type] = {
    "BayesNet": BayesNet,
    "J48": J48,
    "JRip": JRip,
    "MLP": MLP,
    "OneR": OneR,
    "REPTree": REPTree,
    "SGD": SGD,
    "SMO": SMO,
}


def make_classifier(name: str, **kwargs) -> Classifier:
    """Instantiate one of the paper's base classifiers by WEKA name."""
    if name not in BASE_CLASSIFIERS:
        raise KeyError(f"unknown classifier {name!r}; choose from {sorted(BASE_CLASSIFIERS)}")
    return BASE_CLASSIFIERS[name](**kwargs)


__all__ = [
    "BASE_CLASSIFIERS",
    "AdaBoostM1",
    "ArtifactError",
    "Bagging",
    "BayesNet",
    "BootstrapCI",
    "ClassificationReport",
    "Classifier",
    "GaussianAnomalyDetector",
    "KNearestNeighbors",
    "LogisticRegression",
    "McNemarResult",
    "DetectorScores",
    "Discretizer",
    "J48",
    "JRip",
    "MLP",
    "NotFittedError",
    "OneR",
    "REPTree",
    "SGD",
    "SMO",
    "SplitResult",
    "StandardScaler",
    "VotingEnsemble",
    "acc_times_auc",
    "accuracy",
    "app_level_kfold",
    "bootstrap_metric_ci",
    "mcnemar_test",
    "app_level_split",
    "classification_report",
    "classifier_from_artifact",
    "export_classifier",
    "confusion_matrix",
    "equal_frequency_cuts",
    "evaluate_detector",
    "make_classifier",
    "mdl_cut_points",
    "roc_auc",
    "roc_curve",
    "sample_level_split",
]
