"""OneR: the one-rule classifier (Holte, 1993), as in WEKA's ``OneR``.

OneR picks the single attribute whose value-bucket → majority-class rule
has the lowest training error.  The paper highlights it because it is the
cheapest detector (1 cycle in hardware, Table 3) and, having chosen one
counter (``branch_instructions`` on their data), it is insensitive to the
HPC budget: its Figure 3 accuracy is flat from 16 HPCs down to 2.

Numeric attributes are bucketed like Holte's algorithm: sort, sweep, and
close a bucket only once it holds at least ``min_bucket_size`` instances
of its majority class and the class changes at a value boundary.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_features, check_training_set, proba_from_counts


class OneR(Classifier):
    """One-rule classifier over bucketed numeric attributes.

    Args:
        min_bucket_size: minimum majority-class mass per bucket (WEKA
            default 6).
    """

    supports_sample_weight = True

    def __init__(self, min_bucket_size: int = 6) -> None:
        super().__init__()
        if min_bucket_size < 1:
            raise ValueError("min_bucket_size must be >= 1")
        self.min_bucket_size = min_bucket_size
        self.params = {"min_bucket_size": min_bucket_size}
        self.attribute_: int | None = None
        self.cut_points_: np.ndarray | None = None
        self.bucket_counts_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _bucketize(
        self, values: np.ndarray, labels: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Holte-style 1R bucketing of one numeric attribute.

        Returns:
            ``(cut_points, bucket_counts)`` where ``bucket_counts`` has
            shape ``(n_buckets, 2)`` of weighted class mass per bucket.
        """
        order = np.argsort(values, kind="stable")
        v, y, w = values[order], labels[order], weights[order]
        cuts: list[float] = []
        counts: list[np.ndarray] = []
        current = np.zeros(2)
        i = 0
        n = len(v)
        while i < n:
            # absorb the whole run of equal values (cannot cut inside it)
            j = i
            while j < n and v[j] == v[i]:
                current[y[j]] += w[j]
                j += 1
            majority_mass = current.max()
            if majority_mass >= self.min_bucket_size and j < n:
                # the left bucket owns value <= cut; when the midpoint of
                # two adjacent floats rounds up onto the right value, fall
                # back to the left value so neither training value crosses
                # the boundary it was counted on
                cut = (v[j - 1] + v[j]) / 2.0
                if cut >= v[j]:
                    cut = v[j - 1]
                cuts.append(cut)
                counts.append(current)
                current = np.zeros(2)
            i = j
        if current.sum() > 0:
            counts.append(current)
        elif counts:
            # trailing empty bucket: drop the last cut
            cuts.pop()
        if not counts:
            counts = [np.zeros(2)]
        # Holte's 1R merges adjacent buckets that agree on the majority
        # class: the rule's predictions are identical either way, and the
        # merged rule is simpler (fewer hardware comparators).
        merged_cuts: list[float] = []
        merged_counts: list[np.ndarray] = [counts[0]]
        for cut, bucket in zip(cuts, counts[1:]):
            if int(bucket.argmax()) == int(merged_counts[-1].argmax()):
                merged_counts[-1] = merged_counts[-1] + bucket
            else:
                merged_cuts.append(cut)
                merged_counts.append(bucket)
        return np.asarray(merged_cuts), np.vstack(merged_counts)

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "OneR":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        best_error = np.inf
        for j in range(features.shape[1]):
            cuts, counts = self._bucketize(features[:, j], labels, weights)
            error = float((counts.sum(axis=1) - counts.max(axis=1)).sum())
            if error < best_error:
                best_error = error
                self.attribute_ = j
                self.cut_points_ = cuts
                self.bucket_counts_ = counts
        self.fitted_ = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        assert self.attribute_ is not None
        assert self.cut_points_ is not None and self.bucket_counts_ is not None
        # side="left" keeps the fit-time boundary semantics: bucket k owns
        # cut[k-1] < value <= cut[k], so a value exactly on a cut lands in
        # the bucket whose training mass it contributed to
        buckets = np.searchsorted(self.cut_points_, features[:, self.attribute_], side="left")
        return proba_from_counts(self.bucket_counts_[buckets])

    @property
    def chosen_attribute(self) -> int:
        """Index of the single attribute the rule uses."""
        self._require_fitted()
        assert self.attribute_ is not None
        return self.attribute_
