"""OneR: the one-rule classifier (Holte, 1993), as in WEKA's ``OneR``.

OneR picks the single attribute whose value-bucket → majority-class rule
has the lowest training error.  The paper highlights it because it is the
cheapest detector (1 cycle in hardware, Table 3) and, having chosen one
counter (``branch_instructions`` on their data), it is insensitive to the
HPC budget: its Figure 3 accuracy is flat from 16 HPCs down to 2.

Numeric attributes are bucketed like Holte's algorithm: sort, sweep, and
close a bucket only once it holds at least ``min_bucket_size`` instances
of its majority class and the class changes at a value boundary.
"""

from __future__ import annotations

import numpy as np

from repro import fitmode
from repro.ml.base import Classifier, check_features, check_training_set, proba_from_counts


def _run_cumulative_masses(
    values: np.ndarray, labels: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sorted run values and cumulative per-class run masses.

    Sorts one attribute, collapses equal-value runs (a 1R bucket can
    never cut inside a run), and returns ``(run_values, cum0, cum1)``
    where ``cum{c}[r]`` is the class-``c`` weight of runs ``0..r``.
    Shared by both bucketing paths: ``np.add.reduceat`` sums segments
    pairwise, not sequentially, so the reference must consume the same
    run masses for the bucket masses — defined as cumulative-minus-base
    differences — to be comparable bitwise.
    """
    if values.size == 0:
        empty = np.empty(0)
        return empty, empty.copy(), empty.copy()
    order = np.argsort(values, kind="stable")
    v, y, w = values[order], labels[order], weights[order]
    starts = np.concatenate(([0], np.flatnonzero(v[1:] != v[:-1]) + 1))
    w0 = np.where(y == 0, w, 0.0)
    w1 = np.where(y == 1, w, 0.0)
    cum0 = np.cumsum(np.add.reduceat(w0, starts))
    cum1 = np.cumsum(np.add.reduceat(w1, starts))
    return v[starts], cum0, cum1


def _merge_buckets(cuts: np.ndarray, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Merge adjacent buckets that agree on the majority class.

    Holte's 1R simplification: the rule's predictions are identical
    either way, and the merged rule is simpler (fewer hardware
    comparators).  Shared tail of both bucketing paths: grouping by each
    bucket's own argmax matches the reference's running-majority merge
    because summing buckets with a common majority class can never flip
    it (float addition is monotone).
    """
    majority = counts.argmax(axis=1)
    change = majority[1:] != majority[:-1]
    starts = np.concatenate(([0], np.flatnonzero(change) + 1))
    return cuts[np.flatnonzero(change)], np.add.reduceat(counts, starts, axis=0)


class OneR(Classifier):
    """One-rule classifier over bucketed numeric attributes.

    Args:
        min_bucket_size: minimum majority-class mass per bucket (WEKA
            default 6).
    """

    supports_sample_weight = True

    def __init__(self, min_bucket_size: int = 6) -> None:
        super().__init__()
        if min_bucket_size < 1:
            raise ValueError("min_bucket_size must be >= 1")
        self.min_bucket_size = min_bucket_size
        self.params = {"min_bucket_size": min_bucket_size}
        self.attribute_: int | None = None
        self.cut_points_: np.ndarray | None = None
        self.bucket_counts_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _bucketize(
        self, values: np.ndarray, labels: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Holte-style 1R bucketing of one numeric attribute.

        Both paths share the sorted-run prologue
        (:func:`_run_cumulative_masses`) and define every bucket's class
        mass as a cumulative-minus-base difference; a bucket closes at
        the first run boundary where the majority mass reaches
        ``min_bucket_size``.  The scalar reference scans runs one Python
        iteration at a time; the fast path jumps straight to each
        closing boundary with two ``searchsorted`` probes (the cumsums
        are nondecreasing) plus a local fixup that re-checks the exact
        protocol comparison, since ``cum - base >= t`` and
        ``cum >= base + t`` can disagree within one ulp.

        Returns:
            ``(cut_points, bucket_counts)`` where ``bucket_counts`` has
            shape ``(n_buckets, 2)`` of weighted class mass per bucket.
        """
        run_values, cum0, cum1 = _run_cumulative_masses(values, labels, weights)
        if fitmode.scalar_fit_enabled():
            closings = self._sweep_scalar(cum0, cum1)
        else:
            closings = self._sweep_fast(cum0, cum1)
        cuts, counts = self._assemble_buckets(run_values, cum0, cum1, closings)
        if counts.shape[0] == 0:
            counts = np.zeros((1, 2))
        return _merge_buckets(cuts, counts)

    def _sweep_scalar(self, cum0: np.ndarray, cum1: np.ndarray) -> list[int]:
        """Run-by-run bucket sweep (differential reference).

        Returns the run indices at which buckets close.
        """
        threshold = self.min_bucket_size
        n_runs = cum0.size
        closings: list[int] = []
        base0 = 0.0
        base1 = 0.0
        for r in range(n_runs - 1):
            if cum0[r] - base0 >= threshold or cum1[r] - base1 >= threshold:
                closings.append(r)
                base0 = float(cum0[r])
                base1 = float(cum1[r])
        return closings

    def _sweep_fast(self, cum0: np.ndarray, cum1: np.ndarray) -> list[int]:
        """Searchsorted bucket sweep, bit-identical to the scalar scan.

        Each bucket's closing boundary is located with two binary probes
        on the nondecreasing cumsums instead of a run-by-run walk, then
        adjusted with the exact protocol comparison: ``cum - base >= t``
        and ``cum >= base + t`` can disagree within one ulp.
        """
        threshold = self.min_bucket_size
        n_runs = cum0.size
        closings: list[int] = []
        if n_runs == 0:
            return closings
        # first crossing from every possible base, two vectorized probes
        jump = np.minimum(
            cum0.searchsorted(cum0 + threshold, side="left"),
            cum1.searchsorted(cum1 + threshold, side="left"),
        ).tolist()
        first = min(
            int(cum0.searchsorted(threshold, side="left")),
            int(cum1.searchsorted(threshold, side="left")),
        )
        base0 = 0.0
        base1 = 0.0
        start = 0
        base = -1
        while start < n_runs - 1:
            r = max(first if base < 0 else jump[base], start)
            while r > start and (
                cum0[r - 1] - base0 >= threshold or cum1[r - 1] - base1 >= threshold
            ):
                r -= 1
            while r < n_runs and not (
                cum0[r] - base0 >= threshold or cum1[r] - base1 >= threshold
            ):
                r += 1
            if r >= n_runs - 1:
                break  # crossing at the last run (or never): final bucket
            closings.append(r)
            base = r
            base0 = float(cum0[r])
            base1 = float(cum1[r])
            start = r + 1
        return closings

    @staticmethod
    def _assemble_buckets(
        run_values: np.ndarray,
        cum0: np.ndarray,
        cum1: np.ndarray,
        closings: list[int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cut points and class masses from the closing run indices.

        Shared by both sweep paths.  Bucket masses are consecutive
        cumulative differences — exactly the ``cum[r] - base`` values the
        sweeps compared against the bucket-size threshold.
        """
        n_runs = run_values.size
        if n_runs == 0:
            return np.empty(0), np.zeros((0, 2))
        rs = np.asarray(closings, dtype=np.intp)
        left = run_values[rs]
        right = run_values[rs + 1]
        cuts = (left + right) / 2.0
        # the left bucket owns value <= cut; when the midpoint of two
        # adjacent floats rounds up onto the right value, fall back to
        # the left value so neither training value crosses the boundary
        # it was counted on
        cuts = np.where(cuts >= right, left, cuts)
        bounds = np.concatenate((rs, [n_runs - 1]))
        c0 = np.diff(cum0[bounds], prepend=0.0)
        c1 = np.diff(cum1[bounds], prepend=0.0)
        if c0[-1] + c1[-1] > 0:
            counts = np.column_stack((c0, c1))
        else:
            # trailing empty bucket: drop it and the last cut
            cuts = cuts[:-1]
            counts = np.column_stack((c0[:-1], c1[:-1]))
        return cuts, counts

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "OneR":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        best_error = np.inf
        for j in range(features.shape[1]):
            cuts, counts = self._bucketize(features[:, j], labels, weights)
            error = float((counts.sum(axis=1) - counts.max(axis=1)).sum())
            if error < best_error:
                best_error = error
                self.attribute_ = j
                self.cut_points_ = cuts
                self.bucket_counts_ = counts
        self.fitted_ = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        assert self.attribute_ is not None
        assert self.cut_points_ is not None and self.bucket_counts_ is not None
        # side="left" keeps the fit-time boundary semantics: bucket k owns
        # cut[k-1] < value <= cut[k], so a value exactly on a cut lands in
        # the bucket whose training mass it contributed to
        buckets = np.searchsorted(self.cut_points_, features[:, self.attribute_], side="left")
        return proba_from_counts(self.bucket_counts_[buckets])

    # -- serialization ---------------------------------------------------
    def export_artifact(self) -> tuple[dict, dict[str, np.ndarray]]:
        self._require_fitted()
        assert self.attribute_ is not None
        assert self.cut_points_ is not None and self.bucket_counts_ is not None
        spec = {"params": dict(self.params), "attribute": int(self.attribute_)}
        return spec, {
            "cut_points": self.cut_points_,
            "bucket_counts": self.bucket_counts_,
        }

    @classmethod
    def from_artifact(cls, spec: dict, arrays: dict) -> "OneR":
        model = cls(**spec["params"])
        model.attribute_ = int(spec["attribute"])
        model.cut_points_ = np.asarray(arrays["cut_points"])
        model.bucket_counts_ = np.asarray(arrays["bucket_counts"])
        if model.bucket_counts_.ndim != 2 or model.bucket_counts_.shape[1] != 2:
            raise ValueError("bucket_counts must have shape (n_buckets, 2)")
        model.fitted_ = True
        return model

    @property
    def chosen_attribute(self) -> int:
        """Index of the single attribute the rule uses."""
        self._require_fitted()
        assert self.attribute_ is not None
        return self.attribute_
