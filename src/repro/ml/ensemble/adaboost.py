"""AdaBoost.M1 (Freund & Schapire, 1997), as in WEKA's ``AdaBoostM1``.

The paper's "Boosted" detectors wrap AdaBoost around every one of the
eight base classifiers.  Like WEKA, base learners that honour instance
weights are trained on the reweighted set directly; learners that do not
(SMO, JRip) are trained on a weight-proportional bootstrap resample.
Training stops early when a round's weighted error hits zero (perfect —
keep the model, stop) or reaches 1/2 (no better than chance — drop the
round), matching WEKA's behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    Classifier,
    build_unfitted,
    check_features,
    check_training_set,
    pack_members,
    unfitted_spec,
    unpack_members,
)

_EPS = 1e-10


class AdaBoostM1(Classifier):
    """AdaBoost.M1 over an arbitrary base classifier.

    Args:
        base: prototype classifier; each round trains a fresh clone.
        n_estimators: boosting rounds (WEKA ``-I`` 10).
        use_resampling: force resampling even for weight-aware learners
            (WEKA ``-Q``); learners without weight support always resample.
        seed: resampling seed.
    """

    supports_sample_weight = False

    def __init__(
        self,
        base: Classifier,
        n_estimators: int = 10,
        use_resampling: bool = False,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ValueError("n_estimators must be positive")
        self.base = base
        self.n_estimators = n_estimators
        self.use_resampling = use_resampling
        self.seed = seed
        self.params = {
            "base": base,
            "n_estimators": n_estimators,
            "use_resampling": use_resampling,
            "seed": seed,
        }
        self.estimators_: list[Classifier] = []
        self.estimator_weights_: list[float] = []

    def clone(self) -> "AdaBoostM1":
        return AdaBoostM1(
            base=self.base.clone(),
            n_estimators=self.n_estimators,
            use_resampling=self.use_resampling,
            seed=self.seed,
        )

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "AdaBoostM1":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        n = len(labels)
        dist = weights / weights.sum()
        rng = np.random.default_rng(self.seed)
        resample = self.use_resampling or not self.base.supports_sample_weight

        self.estimators_ = []
        self.estimator_weights_ = []
        for _ in range(self.n_estimators):
            model = self.base.clone()
            if resample:
                idx = rng.choice(n, size=n, replace=True, p=dist)
                # a resample can be single-class; redraw a few times
                for _retry in range(4):
                    if len(np.unique(labels[idx])) == 2:
                        break
                    idx = rng.choice(n, size=n, replace=True, p=dist)
                model.fit(features[idx], labels[idx])
            else:
                model.fit(features, labels, sample_weight=dist * n)
            predictions = model.predict(features)
            error = float(dist[predictions != labels].sum())
            if error >= 0.5:
                if not self.estimators_:
                    # degenerate data: keep one model anyway
                    self.estimators_.append(model)
                    self.estimator_weights_.append(1.0)
                break
            if error < _EPS:
                self.estimators_.append(model)
                self.estimator_weights_.append(np.log(1.0 / _EPS))
                break
            beta = error / (1.0 - error)
            self.estimators_.append(model)
            self.estimator_weights_.append(float(np.log(1.0 / beta)))
            dist = dist * np.where(predictions == labels, beta, 1.0)
            dist = dist / dist.sum()
        self.fitted_ = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        if not self.estimators_:
            return np.zeros((features.shape[0], 2))
        # each member classifies the whole batch through its vectorized
        # kernel; the stacked (n_members, n) prediction matrix is then
        # reduced to weighted votes in one pass (outer-axis reduction is
        # sequential in member order, bit-identical to the old loop)
        stacked = np.stack([m.predict(features) for m in self.estimators_])
        alphas = np.asarray(self.estimator_weights_)[:, None]
        votes = np.stack(
            [
                (alphas * (stacked == 0)).sum(axis=0),
                (alphas * (stacked == 1)).sum(axis=0),
            ],
            axis=1,
        )
        total = votes.sum(axis=1, keepdims=True)
        return votes / np.where(total > 0, total, 1.0)

    # -- serialization ---------------------------------------------------
    def export_artifact(self) -> tuple[dict, dict[str, np.ndarray]]:
        self._require_fitted()
        members, arrays = pack_members(self.estimators_)
        spec = {
            "params": {
                "n_estimators": self.n_estimators,
                "use_resampling": self.use_resampling,
                "seed": self.seed,
            },
            "base": unfitted_spec(self.base),
            "weights": [float(w) for w in self.estimator_weights_],
            "members": members,
        }
        return spec, arrays

    @classmethod
    def from_artifact(cls, spec: dict, arrays: dict) -> "AdaBoostM1":
        model = cls(base=build_unfitted(spec["base"]), **spec["params"])
        model.estimators_ = unpack_members(spec["members"], arrays)
        model.estimator_weights_ = [float(w) for w in spec["weights"]]
        model.fitted_ = True
        return model

    @property
    def n_models(self) -> int:
        """Number of base models actually kept (early stop can shrink it)."""
        self._require_fitted()
        return len(self.estimators_)
