"""Bagging (Breiman, 1996), as in WEKA's ``Bagging``.

Each round trains a fresh clone of the base classifier on a bootstrap
resample (100% of the training size, drawn with replacement) and the
ensemble averages the members' class probabilities.  The paper notes
bagging "is best used with models with low bias and high variance" —
its strongest rows (BayesNet, JRip at 4 HPCs, Table 2) are exactly the
variance-reduction cases.

Out-of-bag accuracy is tracked per member, giving a free generalization
estimate (WEKA ``-O``).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    Classifier,
    build_unfitted,
    check_features,
    check_training_set,
    pack_members,
    unfitted_spec,
    unpack_members,
)


class Bagging(Classifier):
    """Bootstrap-aggregated ensemble of one base classifier.

    Args:
        base: prototype classifier; each round trains a fresh clone.
        n_estimators: ensemble size (WEKA ``-I`` 10).
        bag_fraction: bootstrap size as a fraction of the training set
            (WEKA ``-P`` 100%).
        seed: bootstrap seed.
    """

    supports_sample_weight = False

    def __init__(
        self,
        base: Classifier,
        n_estimators: int = 10,
        bag_fraction: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ValueError("n_estimators must be positive")
        if not 0 < bag_fraction <= 1.0:
            raise ValueError("bag_fraction must be in (0, 1]")
        self.base = base
        self.n_estimators = n_estimators
        self.bag_fraction = bag_fraction
        self.seed = seed
        self.params = {
            "base": base,
            "n_estimators": n_estimators,
            "bag_fraction": bag_fraction,
            "seed": seed,
        }
        self.estimators_: list[Classifier] = []
        self.oob_accuracy_: float | None = None

    def clone(self) -> "Bagging":
        return Bagging(
            base=self.base.clone(),
            n_estimators=self.n_estimators,
            bag_fraction=self.bag_fraction,
            seed=self.seed,
        )

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "Bagging":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        n = len(labels)
        bag_size = max(int(round(self.bag_fraction * n)), 2)
        rng = np.random.default_rng(self.seed)
        dist = weights / weights.sum()

        self.estimators_ = []
        oob_votes = np.zeros((n, 2))
        for _ in range(self.n_estimators):
            idx = rng.choice(n, size=bag_size, replace=True, p=dist)
            for _retry in range(4):
                if len(np.unique(labels[idx])) == 2:
                    break
                idx = rng.choice(n, size=bag_size, replace=True, p=dist)
            model = self.base.clone()
            model.fit(features[idx], labels[idx])
            self.estimators_.append(model)
            out_of_bag = np.setdiff1d(np.arange(n), idx, assume_unique=False)
            if out_of_bag.size:
                proba = model.predict_proba(features[out_of_bag])
                oob_votes[out_of_bag] += proba
        voted = oob_votes.sum(axis=1) > 0
        if voted.any():
            oob_pred = np.argmax(oob_votes[voted], axis=1)
            self.oob_accuracy_ = float(np.mean(oob_pred == labels[voted]))
        self.fitted_ = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        # stack the members' batch probabilities and average along the
        # member axis (outer-axis reduction is sequential in member
        # order, bit-identical to the old accumulation loop)
        stacked = np.stack([m.predict_proba(features) for m in self.estimators_])
        return stacked.sum(axis=0) / len(self.estimators_)

    # -- serialization ---------------------------------------------------
    def export_artifact(self) -> tuple[dict, dict[str, np.ndarray]]:
        self._require_fitted()
        members, arrays = pack_members(self.estimators_)
        spec = {
            "params": {
                "n_estimators": self.n_estimators,
                "bag_fraction": self.bag_fraction,
                "seed": self.seed,
            },
            "base": unfitted_spec(self.base),
            "oob_accuracy": self.oob_accuracy_,
            "members": members,
        }
        return spec, arrays

    @classmethod
    def from_artifact(cls, spec: dict, arrays: dict) -> "Bagging":
        model = cls(base=build_unfitted(spec["base"]), **spec["params"])
        model.estimators_ = unpack_members(spec["members"], arrays)
        oob = spec["oob_accuracy"]
        model.oob_accuracy_ = float(oob) if oob is not None else None
        model.fitted_ = True
        return model

    @property
    def n_models(self) -> int:
        self._require_fitted()
        return len(self.estimators_)
