"""Ensemble meta-learners: AdaBoost.M1, Bagging (paper §2), and a
heterogeneous voting committee (extension)."""

from repro.ml.ensemble.adaboost import AdaBoostM1
from repro.ml.ensemble.bagging import Bagging
from repro.ml.ensemble.voting import VotingEnsemble

__all__ = ["AdaBoostM1", "Bagging", "VotingEnsemble"]
