"""Heterogeneous voting ensemble: combine *different* classifier types.

AdaBoost and Bagging (the paper's §2) combine many copies of one base
learner.  The related work the paper discusses ([11]) also combines
*different* classifiers; and the paper's own observation — "there is no
unique classifier that delivers the best results across various metrics"
— begs the question of what a committee of the eight does.  This module
answers it:

* :class:`VotingEnsemble` with ``voting="soft"`` averages the members'
  class probabilities (optionally weighted);
* ``voting="hard"`` takes a majority of hard votes, WEKA ``Vote``-style;
* :meth:`VotingEnsemble.fit_weights_by_oob` learns member weights from
  a held-out fraction, so a weak member (say SGD on 2 HPCs) cannot drag
  the committee down.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    Classifier,
    build_unfitted,
    check_features,
    check_training_set,
    pack_members,
    unfitted_spec,
    unpack_members,
)


class VotingEnsemble(Classifier):
    """Committee of heterogeneous classifiers.

    Args:
        members: prototype classifiers; fresh clones are trained.
        voting: ``"soft"`` (average probabilities) or ``"hard"``
            (majority of hard votes).
        weights: optional per-member weights; None = uniform.
        holdout_fraction: when > 0, this fraction of the training data is
            held out to learn accuracy-proportional member weights
            (overrides ``weights``).
        seed: holdout shuffle seed.
    """

    supports_sample_weight = False

    def __init__(
        self,
        members: list[Classifier],
        voting: str = "soft",
        weights: list[float] | None = None,
        holdout_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not members:
            raise ValueError("need at least one member")
        if voting not in ("soft", "hard"):
            raise ValueError(f"unknown voting mode {voting!r}")
        if weights is not None and len(weights) != len(members):
            raise ValueError("weights must align with members")
        if not 0.0 <= holdout_fraction < 0.9:
            raise ValueError("holdout_fraction must be in [0, 0.9)")
        self.members = list(members)
        self.voting = voting
        self.weights = list(weights) if weights is not None else None
        self.holdout_fraction = holdout_fraction
        self.seed = seed
        self.params = {
            "members": members,
            "voting": voting,
            "weights": weights,
            "holdout_fraction": holdout_fraction,
            "seed": seed,
        }
        self.fitted_members_: list[Classifier] = []
        self.fitted_weights_: np.ndarray | None = None

    def clone(self) -> "VotingEnsemble":
        return VotingEnsemble(
            members=[m.clone() for m in self.members],
            voting=self.voting,
            weights=self.weights,
            holdout_fraction=self.holdout_fraction,
            seed=self.seed,
        )

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "VotingEnsemble":
        features, labels, _ = check_training_set(features, labels, sample_weight)
        if self.holdout_fraction > 0.0:
            rng = np.random.default_rng(self.seed)
            order = rng.permutation(len(labels))
            n_holdout = max(int(len(labels) * self.holdout_fraction), 2)
            holdout, fit_rows = order[:n_holdout], order[n_holdout:]
            if len(np.unique(labels[fit_rows])) < 2:
                # degenerate holdout: train on everything and fall back
                # to the configured (or uniform) weights — weighting by
                # accuracy on rows the members trained on would reward
                # overfitting, not merit
                fit_rows = order
                holdout = None
        else:
            fit_rows = np.arange(len(labels))
            holdout = None

        self.fitted_members_ = []
        for member in self.members:
            model = member.clone()
            model.fit(features[fit_rows], labels[fit_rows])
            self.fitted_members_.append(model)

        if holdout is not None:
            accs = np.array([
                float(np.mean(m.predict(features[holdout]) == labels[holdout]))
                for m in self.fitted_members_
            ])
            # members below chance contribute nothing
            merit = np.maximum(accs - 0.5, 0.0)
            if merit.sum() <= 0:
                merit = np.ones_like(merit)
            self.fitted_weights_ = merit / merit.sum()
        elif self.weights is not None:
            w = np.asarray(self.weights, dtype=float)
            if np.any(w < 0) or w.sum() <= 0:
                raise ValueError("weights must be non-negative and not all zero")
            self.fitted_weights_ = w / w.sum()
        else:
            self.fitted_weights_ = np.full(len(self.members), 1.0 / len(self.members))
        self.fitted_ = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        assert self.fitted_weights_ is not None
        # every member sees the whole batch once; the stacked member
        # axis is reduced in one weighted pass (outer-axis reduction is
        # sequential in member order, bit-identical to the old loop)
        weights = self.fitted_weights_
        if self.voting == "soft":
            stacked = np.stack(
                [m.predict_proba(features) for m in self.fitted_members_]
            )
            total = (weights[:, None, None] * stacked).sum(axis=0)
        else:
            stacked = np.stack(
                [m.predict(features) for m in self.fitted_members_]
            )
            w = weights[:, None]
            total = np.stack(
                [
                    (w * (stacked == 0)).sum(axis=0),
                    (w * (stacked == 1)).sum(axis=0),
                ],
                axis=1,
            )
        sums = total.sum(axis=1, keepdims=True)
        return total / np.where(sums > 0, sums, 1.0)

    # -- serialization ---------------------------------------------------
    def export_artifact(self) -> tuple[dict, dict[str, np.ndarray]]:
        self._require_fitted()
        assert self.fitted_weights_ is not None
        members, arrays = pack_members(self.fitted_members_)
        spec = {
            "params": {
                "voting": self.voting,
                "weights": self.weights,
                "holdout_fraction": self.holdout_fraction,
                "seed": self.seed,
            },
            "prototypes": [unfitted_spec(m) for m in self.members],
            "members": members,
        }
        arrays["vote_weights"] = self.fitted_weights_
        return spec, arrays

    @classmethod
    def from_artifact(cls, spec: dict, arrays: dict) -> "VotingEnsemble":
        prototypes = [build_unfitted(p) for p in spec["prototypes"]]
        model = cls(members=prototypes, **spec["params"])
        model.fitted_members_ = unpack_members(spec["members"], arrays)
        model.fitted_weights_ = np.asarray(arrays["vote_weights"])
        model.fitted_ = True
        return model

    @property
    def member_weights(self) -> np.ndarray:
        """The committee weights actually used (after any OOB fitting)."""
        self._require_fitted()
        assert self.fitted_weights_ is not None
        return self.fitted_weights_.copy()
