"""Evaluation metrics: accuracy, confusion matrix, ROC/AUC, ACC×AUC.

The paper evaluates detectors on three axes:

* **accuracy** — fraction of windows classified correctly (§4.1);
* **robustness** — area under the ROC curve, i.e. how well the detector
  separates the classes across *all* thresholds (§4.2);
* **performance** — the product ACC×AUC, the paper's combined figure of
  merit (§4.3).

All functions are pure numpy and operate on label/score vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _check_labels(y_true: np.ndarray, other: np.ndarray, name: str) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    other = np.asarray(other)
    if y_true.shape != other.shape or y_true.ndim != 1:
        raise ValueError(f"y_true and {name} must be 1-D and aligned")
    if y_true.size == 0:
        raise ValueError("cannot evaluate on empty label vector")
    return y_true, other


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correctly classified samples, in ``[0, 1]``."""
    y_true, y_pred = _check_labels(y_true, y_pred, "y_pred")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2x2 confusion matrix ``[[TN, FP], [FN, TP]]``."""
    y_true, y_pred = _check_labels(y_true, y_pred, "y_pred")
    matrix = np.zeros((2, 2), dtype=np.intp)
    for t, p in ((0, 0), (0, 1), (1, 0), (1, 1)):
        matrix[t, p] = int(np.sum((y_true == t) & (y_pred == p)))
    return matrix


@dataclass(frozen=True)
class ClassificationReport:
    """Threshold-dependent summary of a binary detector."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    false_positive_rate: float
    confusion: np.ndarray

    def __str__(self) -> str:
        return (
            f"acc={self.accuracy:.3f} precision={self.precision:.3f} "
            f"recall={self.recall:.3f} f1={self.f1:.3f} fpr={self.false_positive_rate:.3f}"
        )


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> ClassificationReport:
    """Full threshold-dependent report (malware = positive class)."""
    matrix = confusion_matrix(y_true, y_pred)
    tn, fp = int(matrix[0, 0]), int(matrix[0, 1])
    fn, tp = int(matrix[1, 0]), int(matrix[1, 1])
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    fpr = fp / (fp + tn) if fp + tn else 0.0
    return ClassificationReport(
        accuracy=(tp + tn) / len(y_true),
        precision=precision,
        recall=recall,
        f1=f1,
        false_positive_rate=fpr,
        confusion=matrix,
    )


def roc_curve(y_true: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve points for a score vector (higher score = more malicious).

    Ties are handled by grouping samples with equal scores into one
    threshold step, so the curve is an unbiased step function.

    Returns:
        ``(fpr, tpr, thresholds)`` arrays, each beginning at (0, 0) with
        threshold ``+inf`` and ending at (1, 1).
    """
    y_true, scores = _check_labels(y_true, scores, "scores")
    n_pos = int(np.sum(y_true == 1))
    n_neg = int(np.sum(y_true == 0))
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC needs both classes present")
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = y_true[order]
    # Indices where the score changes: the only distinct thresholds.
    distinct = np.flatnonzero(np.diff(sorted_scores))
    step_ends = np.append(distinct, len(scores) - 1)
    tp_cum = np.cumsum(sorted_labels == 1)[step_ends]
    fp_cum = np.cumsum(sorted_labels == 0)[step_ends]
    tpr = np.concatenate([[0.0], tp_cum / n_pos])
    fpr = np.concatenate([[0.0], fp_cum / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[step_ends]])
    return fpr, tpr, thresholds


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal), in ``[0, 1]``.

    Equals the probability that a random malware window outscores a
    random benign window (ties counted half).
    """
    fpr, tpr, _ = roc_curve(y_true, scores)
    return float(np.trapezoid(tpr, fpr))


def acc_times_auc(y_true: np.ndarray, y_pred: np.ndarray, scores: np.ndarray) -> float:
    """The paper's combined performance metric ACC×AUC (§4.3)."""
    return accuracy(y_true, y_pred) * roc_auc(y_true, scores)


@dataclass(frozen=True)
class DetectorScores:
    """The paper's three figures of merit for one evaluated detector."""

    accuracy: float
    auc: float

    @property
    def performance(self) -> float:
        """ACC×AUC, the §4.3 combined metric."""
        return self.accuracy * self.auc


def evaluate_detector(
    y_true: np.ndarray, y_pred: np.ndarray, scores: np.ndarray
) -> DetectorScores:
    """Compute accuracy, AUC and (derived) ACC×AUC in one call."""
    return DetectorScores(
        accuracy=accuracy(y_true, y_pred), auc=roc_auc(y_true, scores)
    )
