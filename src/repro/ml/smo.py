"""SMO: support vector machine via Sequential Minimal Optimization.

Mirrors WEKA's ``SMO``: linear (degree-1 polynomial) kernel, C = 1,
standardized inputs, trained with Platt's pairwise working-set updates.
One WEKA default matters enormously for the paper's numbers: SMO does
*not* fit logistic models by default, so its "probabilities" are hard
0/1 votes.  A hard-voting detector produces a one-point ROC curve whose
AUC is (TPR + TNR) / 2 — which is why the paper's general SMO shows AUC
0.65 while its accuracy is unremarkable-but-fine, and why AdaBoost
(whose weighted vote over ten SMOs *is* graded) lifts SMO's AUC to ~0.9.
Set ``build_logistic_model=True`` for Platt-calibrated scores.
"""

from __future__ import annotations

import numpy as np

from repro import fitmode
from repro.ml.base import Classifier, check_features, check_training_set
from repro.ml.scaling import StandardScaler


class SMO(Classifier):
    """SVM trained with simplified SMO (Platt, 1998).

    Args:
        c: soft-margin penalty (WEKA ``-C`` 1.0).
        kernel: ``"linear"`` (WEKA default PolyKernel E=1) or ``"rbf"``.
        gamma: RBF width (ignored for linear).
        tol: KKT violation tolerance (WEKA ``-L`` 1e-3).
        max_passes: consecutive violation-free passes required to stop.
        max_rounds: hard cap on full working-set sweeps (historical
            fixed cap 60, now tunable).  Simplified SMO never reaches a
            KKT-clean pass on the noisy HPC corpus — the soft-margin
            alphas of overlapping windows keep exchanging mass forever —
            so training always runs to this cap.  Train accuracy is
            statistically flat from ~10 sweeps on, so callers that fit
            many throwaway models (benchmarks, sweeps) can lower this
            for a near-proportional speedup; the default stays 60 so
            fitted models are bit-identical to the historical
            implementation.
        build_logistic_model: fit a logistic on the margin for graded
            probabilities (WEKA ``-M``, default off — see module docs).
        seed: partner-selection seed.
    """

    supports_sample_weight = False

    def __init__(
        self,
        c: float = 1.0,
        kernel: str = "linear",
        gamma: float = 0.1,
        tol: float = 1e-3,
        max_passes: int = 3,
        max_rounds: int = 60,
        build_logistic_model: bool = False,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if c <= 0:
            raise ValueError("c must be positive")
        if kernel not in ("linear", "rbf"):
            raise ValueError(f"unknown kernel {kernel!r}")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        if max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        self.c = c
        self.kernel = kernel
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.max_rounds = max_rounds
        self.build_logistic_model = build_logistic_model
        self.seed = seed
        self.params = {
            "c": c,
            "kernel": kernel,
            "gamma": gamma,
            "tol": tol,
            "max_passes": max_passes,
            "max_rounds": max_rounds,
            "build_logistic_model": build_logistic_model,
            "seed": seed,
        }
        self.scaler_: StandardScaler | None = None
        self.alpha_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.weights_: np.ndarray | None = None  # linear kernel only
        self.support_x_: np.ndarray | None = None
        self.support_y_: np.ndarray | None = None
        self.logistic_ab_: tuple[float, float] | None = None

    # ------------------------------------------------------------------
    def _kernel_row(self, x: np.ndarray, xi: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return x @ xi
        diff = x - xi
        return np.exp(-self.gamma * np.einsum("ij,ij->i", diff, diff))

    def _margins(self, x: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            assert self.weights_ is not None
            return x @ self.weights_ + self.bias_
        assert self.support_x_ is not None and self.support_y_ is not None
        assert self.alpha_ is not None
        out = np.full(x.shape[0], self.bias_)
        for a, yi, xi in zip(self.alpha_, self.support_y_, self.support_x_):
            out += a * yi * self._kernel_row(x, xi)
        return out

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "SMO":
        features, labels, _ = check_training_set(features, labels, sample_weight)
        self.scaler_ = StandardScaler.fit(features)
        x = self.scaler_.transform(features)
        y = labels * 2.0 - 1.0
        rng = np.random.default_rng(self.seed)

        if x.shape[0] < 2:
            # a pair step needs two rows; historically a single-row set
            # crashed the partner draw (``rng.integers(0)``)
            alpha, b, w = np.zeros(x.shape[0]), 0.0, np.zeros(x.shape[1])
        elif self.kernel == "linear":
            if fitmode.scalar_fit_enabled():
                alpha, b, w = self._fit_linear_scalar(x, y, rng)
            else:
                alpha, b, w = self._fit_linear(x, y, rng)
        else:
            alpha, b, w = self._fit_rbf(x, y, rng)

        self.alpha_ = alpha
        self.bias_ = float(b)
        support = alpha > 1e-8
        self.support_x_ = x[support]
        self.support_y_ = y[support]
        if self.kernel == "linear":
            self.weights_ = w
        else:
            self.alpha_ = alpha[support]
        self.fitted_ = True
        if self.build_logistic_model:
            margins = self._margins(x)
            self.logistic_ab_ = _fit_platt(margins, labels)
        return self

    # -- linear-kernel training (per-visit margin protocol) ------------
    #
    # Both linear paths consume the historical protocol exactly: every
    # margin that feeds a KKT test or a pair update is the per-row ddot
    # ``float(x[i] @ w) + b`` against the *live* weights.  The fast path
    # additionally keeps a gemv margin snapshot, but only as a *screen*:
    # it pre-filters candidate violators (with a slack much wider than
    # the gemv-vs-ddot rounding gap yet much narrower than ``tol``) and
    # every candidate is then confirmed with the exact ddot test before
    # a partner is drawn.  Rows the screen rejects cannot pass the exact
    # test, and rng draws happen exactly where the reference draws them,
    # so the fitted model is bit-identical to the scalar reference (and
    # to the historical implementation).
    #
    # Scalar locals are plain Python floats throughout (``y``/``kdiag``
    # prefetched via ``tolist``, alphas mirrored in a list): float and
    # np.float64 are both IEEE-754 doubles with identical rounding, so
    # every result matches the historical np.float64 forms bit for bit
    # while skipping numpy's per-scalar dispatch, which dominated the
    # visit cost.

    def _pair_update(
        self,
        xr: list[np.ndarray],
        yl: list[float],
        alpha: np.ndarray,
        al: list[float],
        w: np.ndarray,
        b: float,
        kl: list[float],
        i: int,
        j: int,
        err_i: float,
        err_j: float,
    ) -> tuple[bool, float]:
        """Attempt one Platt pair step on ``(i, j)``; mutates alpha/w.

        Returns ``(changed, b)``; the caller refreshes the margin cache
        when ``changed``.  Shared by the scalar and vectorized linear
        paths so the update arithmetic cannot drift between them.
        """
        ai_old, aj_old = al[i], al[j]
        yi, yj = yl[i], yl[j]
        if yi != yj:
            low = max(0.0, aj_old - ai_old)
            high = min(self.c, self.c + aj_old - ai_old)
        else:
            low = max(0.0, ai_old + aj_old - self.c)
            high = min(self.c, ai_old + aj_old)
        if high - low < 1e-12:
            return False, b
        kij = float(xr[i] @ xr[j])
        eta = 2.0 * kij - kl[i] - kl[j]
        if eta >= 0:
            return False, b
        aj = aj_old - yj * (err_i - err_j) / eta
        aj = min(max(aj, low), high)
        if abs(aj - aj_old) < 1e-5:
            return False, b
        ai = ai_old + yi * yj * (aj_old - aj)
        alpha[i] = al[i] = ai
        alpha[j] = al[j] = aj
        w += yi * (ai - ai_old) * xr[i] + yj * (aj - aj_old) * xr[j]
        b1 = b - err_i - yi * (ai - ai_old) * kl[i] - yj * (aj - aj_old) * kij
        b2 = b - err_j - yi * (ai - ai_old) * kij - yj * (aj - aj_old) * kl[j]
        if 0 < ai < self.c:
            b = b1
        elif 0 < aj < self.c:
            b = b2
        else:
            b = (b1 + b2) / 2.0
        return True, b

    #: Screening slack for the fast path's gemv pre-filter: orders of
    #: magnitude above the gemv-vs-ddot rounding gap, orders of
    #: magnitude below ``tol``, so the screen can never reject a row
    #: the exact per-visit test would accept.
    _SCREEN_SLACK = 1e-7

    def _visit(
        self,
        xr: list[np.ndarray],
        yl: list[float],
        alpha: np.ndarray,
        al: list[float],
        w: np.ndarray,
        b: float,
        kl: list[float],
        rng: np.random.Generator,
        i: int,
    ) -> tuple[bool, float]:
        """One exact working-set visit of row ``i`` (both fit paths).

        Evaluates the per-row ddot margin against the live weights,
        tests KKT, and on violation draws a partner and attempts a
        :meth:`_pair_update`.  Returns ``(stepped, b)``.
        """
        yi = yl[i]
        err_i = float(xr[i] @ w) + b - yi
        ai = al[i]
        if (yi * err_i < -self.tol and ai < self.c) or (
            yi * err_i > self.tol and ai > 0
        ):
            n = len(xr)
            j = int(rng.integers(n - 1))
            if j >= i:
                j += 1
            err_j = float(xr[j] @ w) + b - yl[j]
            return self._pair_update(xr, yl, alpha, al, w, b, kl, i, j, err_i, err_j)
        return False, b

    def _fit_linear_scalar(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, float, np.ndarray]:
        """Historical training loop: one exact visit per row per round."""
        n = x.shape[0]
        alpha = np.zeros(n)
        b = 0.0
        w = np.zeros(x.shape[1])
        kdiag = np.einsum("ij,ij->i", x, x)
        xr = list(x)
        yl = y.tolist()
        al = alpha.tolist()
        kl = kdiag.tolist()
        passes = 0
        iterations = 0
        max_iterations = self.max_rounds * n
        while passes < self.max_passes and iterations < max_iterations:
            changed = 0
            for i in range(n):
                iterations += 1
                stepped, b = self._visit(xr, yl, alpha, al, w, b, kl, rng, i)
                if stepped:
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
        return alpha, b, w

    def _fit_linear(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, float, np.ndarray]:
        """Screened working-set scan, bit-identical to the scalar path.

        In *sparse* rounds (few updates) a gemv margin snapshot
        ``x @ w + b`` — rebuilt whenever an update lands — pre-filters
        the rows that can possibly violate KKT, and only the surviving
        candidates pay a Python-loop visit; each visit re-runs the exact
        ddot KKT test (see ``_SCREEN_SLACK``) before drawing a partner,
        so skipped rows cannot pass the exact test and rng draws happen
        exactly where the reference draws them.  In *dense* rounds —
        early optimization, when snapshot rebuilds would outnumber the
        visits they skip — the round walks every row exactly like the
        reference.  Both strategies consume the identical per-visit
        protocol, so the fitted model is bit-identical regardless of
        which rounds used which strategy; the previous round's update
        count picks the cheaper one.
        """
        n = x.shape[0]
        alpha = np.zeros(n)
        b = 0.0
        w = np.zeros(x.shape[1])
        kdiag = np.einsum("ij,ij->i", x, x)
        xr = list(x)
        yl = y.tolist()
        al = alpha.tolist()
        kl = kdiag.tolist()
        lo = -self.tol + self._SCREEN_SLACK
        hi = self.tol - self._SCREEN_SLACK
        passes = 0
        iterations = 0
        max_iterations = self.max_rounds * n
        last_changed = n  # assume dense until a round proves otherwise
        while passes < self.max_passes and iterations < max_iterations:
            changed = 0
            if last_changed * 16 > n:
                # Dense round: walk every row like the scalar reference.
                for i in range(n):
                    stepped, b = self._visit(xr, yl, alpha, al, w, b, kl, rng, i)
                    if stepped:
                        changed += 1
            else:
                i = 0
                stale = True
                candidates = np.empty(0, dtype=np.intp)
                pos = 0
                while i < n:
                    if stale:
                        yerr = y * (x @ w + b - y)
                        screened = ((yerr < lo) & (alpha < self.c)) | (
                            (yerr > hi) & (alpha > 0)
                        )
                        candidates = np.flatnonzero(screened)
                        pos = int(np.searchsorted(candidates, i))
                        stale = False
                    if pos >= candidates.size:
                        break
                    i = int(candidates[pos])
                    stepped, b = self._visit(xr, yl, alpha, al, w, b, kl, rng, i)
                    if stepped:
                        changed += 1
                        stale = True
                    i += 1
                    pos += 1
            iterations += n
            last_changed = changed
            passes = passes + 1 if changed == 0 else 0
        return alpha, b, w

    def _fit_rbf(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, float, np.ndarray]:
        """RBF-kernel SMO (historical per-visit loop, both fit modes).

        Kernel rows are cached lazily; margins are evaluated over live
        support vectors per visit.  The evaluation matrix trains linear
        SMO only, so this path is kept scalar.
        """
        n = x.shape[0]
        alpha = np.zeros(n)
        b = 0.0
        w = np.zeros(x.shape[1])  # unused by rbf predictions, returned for symmetry
        kernel_cache: dict[int, np.ndarray] = {}

        def krow(i: int) -> np.ndarray:
            if i not in kernel_cache:
                kernel_cache[i] = self._kernel_row(x, x[i])
            return kernel_cache[i]

        def f(i: int) -> float:
            live = alpha > 0
            if not live.any():
                return b
            return float((alpha[live] * y[live] * krow(i)[live]).sum() + b)

        kdiag = np.ones(n)
        passes = 0
        iterations = 0
        max_iterations = self.max_rounds * n
        while passes < self.max_passes and iterations < max_iterations:
            changed = 0
            for i in range(n):
                iterations += 1
                err_i = f(i) - y[i]
                if (y[i] * err_i < -self.tol and alpha[i] < self.c) or (
                    y[i] * err_i > self.tol and alpha[i] > 0
                ):
                    j = int(rng.integers(n - 1))
                    if j >= i:
                        j += 1
                    err_j = f(j) - y[j]
                    ai_old, aj_old = alpha[i], alpha[j]
                    if y[i] != y[j]:
                        low = max(0.0, aj_old - ai_old)
                        high = min(self.c, self.c + aj_old - ai_old)
                    else:
                        low = max(0.0, ai_old + aj_old - self.c)
                        high = min(self.c, ai_old + aj_old)
                    if high - low < 1e-12:
                        continue
                    kij = float(krow(i)[j])
                    eta = 2.0 * kij - kdiag[i] - kdiag[j]
                    if eta >= 0:
                        continue
                    aj = aj_old - y[j] * (err_i - err_j) / eta
                    aj = float(np.clip(aj, low, high))
                    if abs(aj - aj_old) < 1e-5:
                        continue
                    ai = ai_old + y[i] * y[j] * (aj_old - aj)
                    alpha[i], alpha[j] = ai, aj
                    b1 = b - err_i - y[i] * (ai - ai_old) * 1.0 - y[j] * (aj - aj_old) * kij
                    b2 = b - err_j - y[i] * (ai - ai_old) * kij - y[j] * (aj - aj_old) * 1.0
                    if 0 < ai < self.c:
                        b = b1
                    elif 0 < aj < self.c:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
        return alpha, b, w

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed SVM margin of each row."""
        self._require_fitted()
        features = check_features(features)
        assert self.scaler_ is not None
        return self._margins(self.scaler_.transform(features))

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        margins = self.decision_function(features)
        if self.logistic_ab_ is not None:
            a, b = self.logistic_ab_
            p1 = 1.0 / (1.0 + np.exp(np.clip(a * margins + b, -35, 35)))
        else:
            # WEKA default: hard votes masquerading as probabilities.
            p1 = (margins >= 0).astype(float)
        return np.column_stack([1.0 - p1, p1])

    # -- serialization ---------------------------------------------------
    def export_artifact(self) -> tuple[dict, dict[str, np.ndarray]]:
        self._require_fitted()
        assert self.scaler_ is not None and self.alpha_ is not None
        assert self.support_x_ is not None and self.support_y_ is not None
        spec = {
            "params": dict(self.params),
            "bias": float(self.bias_),
            "logistic_ab": (
                [float(self.logistic_ab_[0]), float(self.logistic_ab_[1])]
                if self.logistic_ab_ is not None
                else None
            ),
        }
        arrays = {
            "scaler_mean": self.scaler_.mean,
            "scaler_scale": self.scaler_.scale,
            "alpha": self.alpha_,
            "support_x": self.support_x_,
            "support_y": self.support_y_,
        }
        if self.weights_ is not None:
            arrays["weights"] = self.weights_
        return spec, arrays

    @classmethod
    def from_artifact(cls, spec: dict, arrays: dict) -> "SMO":
        model = cls(**spec["params"])
        model.scaler_ = StandardScaler(
            mean=np.asarray(arrays["scaler_mean"]),
            scale=np.asarray(arrays["scaler_scale"]),
        )
        model.alpha_ = np.asarray(arrays["alpha"])
        model.bias_ = float(spec["bias"])
        model.support_x_ = np.asarray(arrays["support_x"])
        model.support_y_ = np.asarray(arrays["support_y"])
        if "weights" in arrays:
            model.weights_ = np.asarray(arrays["weights"])
        elif model.kernel == "linear":
            raise ValueError("linear-kernel SMO artifact is missing weights")
        ab = spec["logistic_ab"]
        model.logistic_ab_ = (float(ab[0]), float(ab[1])) if ab is not None else None
        model.fitted_ = True
        return model

    @property
    def n_support_vectors(self) -> int:
        self._require_fitted()
        assert self.support_x_ is not None
        return self.support_x_.shape[0]


def _fit_platt(margins: np.ndarray, labels: np.ndarray, epochs: int = 200) -> tuple[float, float]:
    """Platt scaling: fit sigmoid P(y=1|m) = 1/(1+exp(a*m+b)) by Newton steps."""
    prior1 = float((labels == 1).sum())
    prior0 = float((labels == 0).sum())
    target = np.where(labels == 1, (prior1 + 1.0) / (prior1 + 2.0), 1.0 / (prior0 + 2.0))
    a, b = -1.0, 0.0
    for _ in range(epochs):
        z = np.clip(a * margins + b, -35, 35)
        p = 1.0 / (1.0 + np.exp(z))
        # dL/dz = target - p for z = a*m + b with p = 1/(1+e^z)
        grad_common = target - p
        ga = float((grad_common * margins).sum())
        gb = float(grad_common.sum())
        wdiag = p * (1.0 - p)
        haa = float((wdiag * margins * margins).sum()) + 1e-9
        hbb = float(wdiag.sum()) + 1e-9
        a -= ga / haa
        b -= gb / hbb
        if abs(ga) < 1e-8 and abs(gb) < 1e-8:
            break
    return a, b
