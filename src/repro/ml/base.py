"""Base classifier API shared by all learners in the framework.

The framework mirrors WEKA's classifier contract (the tool the paper
uses): binary classifiers are trained on a numeric feature matrix with
labels in ``{0, 1}`` and expose class-membership probabilities, which the
evaluation uses both for thresholded accuracy and for threshold-free
ROC/AUC robustness analysis.

Every concrete learner:

* records its constructor arguments in ``self.params`` so :meth:`clone`
  can produce fresh untrained copies (ensembles rely on this);
* declares :attr:`supports_sample_weight`, which decides whether AdaBoost
  re-weights or re-samples for it (matching WEKA's ``AdaBoostM1``);
* raises :class:`NotFittedError` when queried before training.
"""

from __future__ import annotations

import abc

import numpy as np

N_CLASSES = 2


class NotFittedError(RuntimeError):
    """Raised when predict/predict_proba is called before fit."""


class ArtifactError(RuntimeError):
    """A serialized model artifact is malformed, truncated, or unknown."""


#: Classifier classes by name, for rebuilding models from artifacts.
#: Populated automatically by ``Classifier.__init_subclass__``.
_ARTIFACT_KINDS: dict[str, type] = {}


def check_features(features: np.ndarray) -> np.ndarray:
    """Validate and canonicalize a feature matrix to float64 2-D."""
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ValueError(f"expected 2-D feature matrix, got shape {features.shape}")
    if not np.all(np.isfinite(features)):
        raise ValueError("feature matrix contains NaN or infinite values")
    return features


def check_training_set(
    features: np.ndarray,
    labels: np.ndarray,
    sample_weight: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate a training set and return canonical (X, y, w) arrays.

    Weights are normalized to sum to ``len(y)`` so weighted counts stay on
    the same scale as unweighted ones.
    """
    features = check_features(features)
    labels = np.asarray(labels)
    if labels.shape != (features.shape[0],):
        raise ValueError("labels must have one entry per feature row")
    bad = set(np.unique(labels)) - {0, 1}
    if bad:
        raise ValueError(f"labels must be binary 0/1, found {sorted(bad)}")
    if features.shape[0] == 0:
        raise ValueError("cannot train on an empty dataset")
    if sample_weight is None:
        weights = np.ones(features.shape[0])
    else:
        weights = np.asarray(sample_weight, dtype=float)
        if weights.shape != (features.shape[0],):
            raise ValueError("sample_weight must align with feature rows")
        if np.any(weights < 0):
            raise ValueError("sample weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("sample weights sum to zero")
        weights = weights * (len(weights) / total)
    return features, labels.astype(np.intp), weights


class Classifier(abc.ABC):
    """Abstract binary classifier.

    Subclasses must set ``self.params`` to their constructor arguments
    (used by :meth:`clone`) and implement :meth:`fit` and
    :meth:`predict_proba`.
    """

    #: Whether :meth:`fit` honours the ``sample_weight`` argument.
    supports_sample_weight: bool = False

    def __init__(self) -> None:
        self.params: dict = {}
        self.fitted_ = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        _ARTIFACT_KINDS[cls.__name__] = cls

    @abc.abstractmethod
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "Classifier":
        """Train on (features, labels); returns self for chaining."""

    @abc.abstractmethod
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class-membership probabilities, shape ``(n, 2)``."""

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions at the 0.5 probability threshold."""
        return (self.predict_proba(features)[:, 1] >= 0.5).astype(np.intp)

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Monotone score for ROC analysis (malware-class probability)."""
        return self.predict_proba(features)[:, 1]

    def clone(self) -> "Classifier":
        """Fresh untrained copy with identical hyper-parameters."""
        return type(self)(**self.params)

    def _require_fitted(self) -> None:
        if not self.fitted_:
            raise NotFittedError(f"{type(self).__name__} is not fitted")

    # -- serialization (model registry) ---------------------------------
    def export_artifact(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Serialize the fitted model as ``(spec, arrays)``.

        ``spec`` is a JSON-safe dict (hyper-parameters plus any fitted
        scalars); ``arrays`` holds the fitted numpy state under stable
        keys.  :meth:`from_artifact` inverts this exactly — predictions
        of the rebuilt model must be byte-equal to the original's.
        """
        raise ArtifactError(
            f"{type(self).__name__} does not support artifact export"
        )

    @classmethod
    def from_artifact(cls, spec: dict, arrays: dict) -> "Classifier":
        """Rebuild a fitted model from :meth:`export_artifact` output.

        The arrays may be read-only memory maps; implementations must not
        mutate them and should keep them as the live inference state so a
        loaded model shares pages across processes.
        """
        raise ArtifactError(f"{cls.__name__} does not support artifact loading")

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"{type(self).__name__}({args})"


def export_classifier(model: Classifier) -> tuple[dict, dict[str, np.ndarray]]:
    """``(spec, arrays)`` of a fitted classifier, with ``spec["kind"]`` set.

    The ``kind`` (class name) is what :func:`classifier_from_artifact`
    dispatches on; everything else is the classifier's own
    :meth:`Classifier.export_artifact` payload.
    """
    spec, arrays = model.export_artifact()
    spec = dict(spec)
    spec["kind"] = type(model).__name__
    return spec, arrays


def classifier_from_artifact(spec: dict, arrays: dict) -> Classifier:
    """Rebuild a fitted classifier from an :func:`export_classifier` payload.

    Raises:
        ArtifactError: unknown ``kind``, missing arrays, or arrays whose
            shapes do not assemble into a valid model.
    """
    import repro.ml  # noqa: F401  (imports every learner, filling _ARTIFACT_KINDS)

    kind = spec.get("kind")
    target = _ARTIFACT_KINDS.get(kind) if isinstance(kind, str) else None
    if target is None:
        raise ArtifactError(f"unknown classifier kind {kind!r} in artifact spec")
    try:
        return target.from_artifact(spec, arrays)
    except ArtifactError:
        raise
    except (KeyError, IndexError, ValueError, TypeError) as exc:
        raise ArtifactError(f"malformed {kind} artifact: {exc}") from exc


def unfitted_spec(model: Classifier) -> dict:
    """JSON-safe ``{kind, params}`` of an *untrained* prototype.

    Ensembles store this for their base/member prototypes so a loaded
    ensemble can reconstruct the exact constructor arguments without
    pickling classifier objects.
    """
    return {"kind": type(model).__name__, "params": dict(model.params)}


def build_unfitted(spec: dict) -> Classifier:
    """Instantiate the untrained prototype described by :func:`unfitted_spec`."""
    import repro.ml  # noqa: F401

    kind = spec.get("kind")
    target = _ARTIFACT_KINDS.get(kind) if isinstance(kind, str) else None
    if target is None:
        raise ArtifactError(f"unknown classifier kind {kind!r} in prototype spec")
    try:
        return target(**spec.get("params", {}))
    except (TypeError, ValueError) as exc:
        raise ArtifactError(f"invalid {kind} prototype parameters: {exc}") from exc


def pack_members(
    members: list[Classifier], prefix: str = "member_"
) -> tuple[list[dict], dict[str, np.ndarray]]:
    """Stack the artifacts of fitted ensemble members into shared arrays.

    Per member, every exported array is flattened (C order) and
    concatenated per key across members; the returned layout records each
    member's spec and key→shape map so :func:`unpack_members` can slice
    the members back out as zero-copy views — including views into a
    memory-mapped ``.npz`` payload.  Heterogeneous members are fine: the
    layout is per member, and a key only advances the offset of members
    that actually use it.
    """
    layouts: list[dict] = []
    chunks: dict[str, list[np.ndarray]] = {}
    for member in members:
        spec, arrays = export_classifier(member)
        layout: dict[str, list[int]] = {}
        for key in sorted(arrays):
            arr = np.ascontiguousarray(arrays[key])
            layout[key] = list(arr.shape)
            chunks.setdefault(key, []).append(arr.reshape(-1))
        layouts.append({"spec": spec, "layout": layout})
    stacked = {
        prefix + key: np.concatenate(parts) for key, parts in chunks.items()
    }
    return layouts, stacked


def unpack_members(
    layouts: list[dict], arrays: dict, prefix: str = "member_"
) -> list[Classifier]:
    """Rebuild fitted ensemble members from :func:`pack_members` output.

    The per-member slices are views on the stacked arrays (no copies), so
    members of a memory-mapped ensemble artifact share the mapped pages.
    """
    offsets: dict[str, int] = {}
    members: list[Classifier] = []
    for entry in layouts:
        member_arrays: dict[str, np.ndarray] = {}
        for key, shape in entry["layout"].items():
            # asanyarray: slicing a np.memmap stack must hand members
            # memmap views, not private copies
            stacked = np.asanyarray(arrays[prefix + key])
            size = int(np.prod(shape, dtype=np.int64))
            start = offsets.get(key, 0)
            if start + size > stacked.size:
                raise ArtifactError(
                    f"member array {key!r} is truncated: layout needs "
                    f"{start + size} elements, stacked payload has {stacked.size}"
                )
            member_arrays[key] = stacked[start : start + size].reshape(shape)
            offsets[key] = start + size
        members.append(classifier_from_artifact(entry["spec"], member_arrays))
    return members


def proba_from_counts(counts: np.ndarray, prior: float = 1.0) -> np.ndarray:
    """Laplace-smoothed probabilities from per-class counts.

    Args:
        counts: array ``(..., 2)`` of (possibly weighted) class counts.
        prior: Laplace smoothing pseudo-count per class.
    """
    counts = np.asarray(counts, dtype=float) + prior
    return counts / counts.sum(axis=-1, keepdims=True)
