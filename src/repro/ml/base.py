"""Base classifier API shared by all learners in the framework.

The framework mirrors WEKA's classifier contract (the tool the paper
uses): binary classifiers are trained on a numeric feature matrix with
labels in ``{0, 1}`` and expose class-membership probabilities, which the
evaluation uses both for thresholded accuracy and for threshold-free
ROC/AUC robustness analysis.

Every concrete learner:

* records its constructor arguments in ``self.params`` so :meth:`clone`
  can produce fresh untrained copies (ensembles rely on this);
* declares :attr:`supports_sample_weight`, which decides whether AdaBoost
  re-weights or re-samples for it (matching WEKA's ``AdaBoostM1``);
* raises :class:`NotFittedError` when queried before training.
"""

from __future__ import annotations

import abc

import numpy as np

N_CLASSES = 2


class NotFittedError(RuntimeError):
    """Raised when predict/predict_proba is called before fit."""


def check_features(features: np.ndarray) -> np.ndarray:
    """Validate and canonicalize a feature matrix to float64 2-D."""
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ValueError(f"expected 2-D feature matrix, got shape {features.shape}")
    if not np.all(np.isfinite(features)):
        raise ValueError("feature matrix contains NaN or infinite values")
    return features


def check_training_set(
    features: np.ndarray,
    labels: np.ndarray,
    sample_weight: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate a training set and return canonical (X, y, w) arrays.

    Weights are normalized to sum to ``len(y)`` so weighted counts stay on
    the same scale as unweighted ones.
    """
    features = check_features(features)
    labels = np.asarray(labels)
    if labels.shape != (features.shape[0],):
        raise ValueError("labels must have one entry per feature row")
    bad = set(np.unique(labels)) - {0, 1}
    if bad:
        raise ValueError(f"labels must be binary 0/1, found {sorted(bad)}")
    if features.shape[0] == 0:
        raise ValueError("cannot train on an empty dataset")
    if sample_weight is None:
        weights = np.ones(features.shape[0])
    else:
        weights = np.asarray(sample_weight, dtype=float)
        if weights.shape != (features.shape[0],):
            raise ValueError("sample_weight must align with feature rows")
        if np.any(weights < 0):
            raise ValueError("sample weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("sample weights sum to zero")
        weights = weights * (len(weights) / total)
    return features, labels.astype(np.intp), weights


class Classifier(abc.ABC):
    """Abstract binary classifier.

    Subclasses must set ``self.params`` to their constructor arguments
    (used by :meth:`clone`) and implement :meth:`fit` and
    :meth:`predict_proba`.
    """

    #: Whether :meth:`fit` honours the ``sample_weight`` argument.
    supports_sample_weight: bool = False

    def __init__(self) -> None:
        self.params: dict = {}
        self.fitted_ = False

    @abc.abstractmethod
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "Classifier":
        """Train on (features, labels); returns self for chaining."""

    @abc.abstractmethod
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class-membership probabilities, shape ``(n, 2)``."""

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions at the 0.5 probability threshold."""
        return (self.predict_proba(features)[:, 1] >= 0.5).astype(np.intp)

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Monotone score for ROC analysis (malware-class probability)."""
        return self.predict_proba(features)[:, 1]

    def clone(self) -> "Classifier":
        """Fresh untrained copy with identical hyper-parameters."""
        return type(self)(**self.params)

    def _require_fitted(self) -> None:
        if not self.fitted_:
            raise NotFittedError(f"{type(self).__name__} is not fitted")

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"{type(self).__name__}({args})"


def proba_from_counts(counts: np.ndarray, prior: float = 1.0) -> np.ndarray:
    """Laplace-smoothed probabilities from per-class counts.

    Args:
        counts: array ``(..., 2)`` of (possibly weighted) class counts.
        prior: Laplace smoothing pseudo-count per class.
    """
    counts = np.asarray(counts, dtype=float) + prior
    return counts / counts.sum(axis=-1, keepdims=True)
