"""Train/test protocols matching the paper's §3.3 methodology.

The paper validates with a 70%–30% split performed *per class at the
application level*: 70% of benign apps plus 70% of malware apps train,
the remaining 30%+30% test — so every test window comes from an
application never seen in training ("unknown applications").  A naive
split over windows would leak application identity into the test set and
inflate every metric; :func:`sample_level_split` exists precisely so the
ablation bench can measure that leak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.dataset import BENIGN, MALWARE, Dataset


@dataclass(frozen=True)
class SplitResult:
    """Train/test datasets plus the application ids behind each side."""

    train: Dataset
    test: Dataset
    train_apps: tuple[int, ...]
    test_apps: tuple[int, ...]


def _apps_by_class(dataset: Dataset) -> tuple[np.ndarray, np.ndarray]:
    app_ids = np.unique(dataset.app_ids)
    labels = np.array([dataset.app_label(a) for a in app_ids])
    return app_ids[labels == BENIGN], app_ids[labels == MALWARE]


def app_level_split(
    dataset: Dataset, train_fraction: float = 0.7, seed: int = 0
) -> SplitResult:
    """The paper's stratified application-level 70/30 split.

    Args:
        dataset: full corpus with provenance.
        train_fraction: fraction of each class's *applications* used for
            training (paper: 0.7).
        seed: shuffle seed.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    train_apps: list[int] = []
    test_apps: list[int] = []
    for class_apps in _apps_by_class(dataset):
        if class_apps.size < 2:
            raise ValueError("need at least two applications per class to split")
        shuffled = rng.permutation(class_apps)
        n_train = max(int(round(train_fraction * class_apps.size)), 1)
        n_train = min(n_train, class_apps.size - 1)
        train_apps.extend(int(a) for a in shuffled[:n_train])
        test_apps.extend(int(a) for a in shuffled[n_train:])
    return SplitResult(
        train=dataset.select_apps(train_apps),
        test=dataset.select_apps(test_apps),
        train_apps=tuple(sorted(train_apps)),
        test_apps=tuple(sorted(test_apps)),
    )


def sample_level_split(
    dataset: Dataset, train_fraction: float = 0.7, seed: int = 0
) -> SplitResult:
    """Leaky window-level split (for the leakage ablation only).

    Windows of the same application can land on both sides, so the test
    set is not made of unknown applications.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.n_samples)
    n_train = max(int(round(train_fraction * dataset.n_samples)), 1)
    train_rows, test_rows = order[:n_train], order[n_train:]

    def subset(rows: np.ndarray) -> Dataset:
        return Dataset(
            features=dataset.features[rows],
            labels=dataset.labels[rows],
            feature_names=dataset.feature_names,
            app_ids=dataset.app_ids[rows],
            app_names=dataset.app_names,
            app_families=dataset.app_families,
        )

    return SplitResult(
        train=subset(train_rows),
        test=subset(test_rows),
        train_apps=tuple(sorted(int(a) for a in np.unique(dataset.app_ids[train_rows]))),
        test_apps=tuple(sorted(int(a) for a in np.unique(dataset.app_ids[test_rows]))),
    )


def app_level_kfold(
    dataset: Dataset, n_folds: int = 5, seed: int = 0
) -> list[SplitResult]:
    """Stratified k-fold cross-validation over applications."""
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    rng = np.random.default_rng(seed)
    benign_apps, malware_apps = _apps_by_class(dataset)
    if min(benign_apps.size, malware_apps.size) < n_folds:
        raise ValueError("not enough applications per class for the fold count")
    folds: list[list[int]] = [[] for _ in range(n_folds)]
    for class_apps in (benign_apps, malware_apps):
        shuffled = rng.permutation(class_apps)
        for i, app in enumerate(shuffled):
            folds[i % n_folds].append(int(app))
    results = []
    all_apps = {int(a) for a in np.unique(dataset.app_ids)}
    for fold in folds:
        test_apps = sorted(fold)
        train_apps = sorted(all_apps - set(fold))
        results.append(
            SplitResult(
                train=dataset.select_apps(train_apps),
                test=dataset.select_apps(test_apps),
                train_apps=tuple(train_apps),
                test_apps=tuple(test_apps),
            )
        )
    return results
