"""Shared machinery for the decision-tree learners (J48, REPTree).

Both of the paper's tree classifiers are top-down inducers over numeric
attributes with binary threshold splits; they differ in split criterion
(gain ratio vs. information gain) and pruning (C4.5 pessimistic error
vs. reduced-error pruning).  This module provides the node structure and
the vectorized split search they share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import fitmode

_EPS = 1e-12


@dataclass
class TreeNode:
    """One node of a binary decision tree.

    Attributes:
        counts: weighted class counts of the training data reaching the node.
        attribute: split attribute index (internal nodes only).
        threshold: split threshold; left subtree takes ``value <= threshold``.
        left, right: children (internal nodes only).
    """

    counts: np.ndarray
    attribute: int | None = None
    threshold: float | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    #: scratch field used by reduced-error pruning (held-out counts).
    prune_counts: np.ndarray = field(default_factory=lambda: np.zeros(2))

    @property
    def is_leaf(self) -> bool:
        return self.attribute is None

    @property
    def majority(self) -> int:
        return int(np.argmax(self.counts))

    def make_leaf(self) -> None:
        """Collapse this node into a leaf."""
        self.attribute = None
        self.threshold = None
        self.left = None
        self.right = None

    # -- structure statistics (used by the hardware cost model) ---------
    def n_nodes(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + self.left.n_nodes() + self.right.n_nodes()

    def n_leaves(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.n_leaves() + self.right.n_leaves()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())


def entropy(counts: np.ndarray) -> float:
    """Entropy (nats) of a weighted class-count vector."""
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log(p)).sum())


@dataclass(frozen=True)
class Split:
    """Result of a split search on one node's data."""

    attribute: int
    threshold: float
    gain: float
    gain_ratio: float


def best_split_for_attribute(
    values: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray,
    min_leaf_weight: float,
) -> tuple[float, float, float] | None:
    """Best binary threshold on one attribute.

    Vectorized sweep: sort once, build cumulative weighted class counts,
    evaluate every distinct-value boundary simultaneously.

    Returns:
        ``(threshold, gain, gain_ratio)`` of the entropy-gain maximizing
        cut, or None when no cut leaves ``min_leaf_weight`` on both sides.
    """
    order = np.argsort(values, kind="stable")
    v, y, w = values[order], labels[order], weights[order]
    boundaries = np.flatnonzero(np.diff(v) > 0)
    if boundaries.size == 0:
        return None
    onehot = np.zeros((len(y), 2))
    onehot[np.arange(len(y)), y] = w
    cum = np.cumsum(onehot, axis=0)
    total_counts = cum[-1]
    total = total_counts.sum()

    left = cum[boundaries]  # (k, 2)
    right = total_counts - left
    wl = left.sum(axis=1)
    wr = right.sum(axis=1)
    ok = (wl >= min_leaf_weight) & (wr >= min_leaf_weight)
    if not ok.any():
        return None
    left, right, wl, wr = left[ok], right[ok], wl[ok], wr[ok]
    boundaries = boundaries[ok]

    def ent(counts: np.ndarray, mass: np.ndarray) -> np.ndarray:
        p = counts / np.maximum(mass[:, None], _EPS)
        p = np.clip(p, _EPS, 1.0)
        return -(p * np.log(p)).sum(axis=1)

    parent_entropy = entropy(total_counts)
    children = (wl * ent(left, wl) + wr * ent(right, wr)) / total
    gains = parent_entropy - children
    pl, pr = wl / total, wr / total
    split_info = -(pl * np.log(pl) + pr * np.log(pr))
    ratios = gains / np.maximum(split_info, _EPS)

    best = int(np.argmax(gains))
    i = boundaries[best]
    threshold = (v[i] + v[i + 1]) / 2.0
    return threshold, float(gains[best]), float(ratios[best])


def _select_split(candidates: list[Split], use_gain_ratio: bool) -> Split | None:
    """Pick the winning split from per-attribute candidates.

    With ``use_gain_ratio`` (C4.5/J48) the winner is the highest gain
    *ratio* among splits whose raw gain is at least the average positive
    gain — C4.5's guard against the ratio favouring near-trivial splits.
    Otherwise (REPTree) plain information gain decides.

    Shared verbatim by the scalar and batch split searches so that tie
    breaking and the mean-gain reduction order cannot drift between them.
    """
    if not candidates:
        return None
    if not use_gain_ratio:
        return max(candidates, key=lambda s: s.gain)
    mean_gain = sum(s.gain for s in candidates) / len(candidates)
    eligible = [s for s in candidates if s.gain >= mean_gain - _EPS]
    return max(eligible, key=lambda s: s.gain_ratio)


def find_split_scalar(
    features: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray,
    min_leaf_weight: float,
    use_gain_ratio: bool,
) -> Split | None:
    """Per-attribute split search (pre-vectorization reference).

    One :func:`best_split_for_attribute` call — sort, cumulative class
    counts, boundary sweep — per attribute.  Retained as the differential
    reference for :func:`find_split_batch`.
    """
    candidates: list[Split] = []
    for j in range(features.shape[1]):
        found = best_split_for_attribute(features[:, j], labels, weights, min_leaf_weight)
        if found is None:
            continue
        threshold, gain, ratio = found
        if gain > _EPS:
            candidates.append(Split(j, threshold, gain, ratio))
    return _select_split(candidates, use_gain_ratio)


def find_split_batch(
    features: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray,
    min_leaf_weight: float,
    use_gain_ratio: bool,
) -> Split | None:
    """Split search over *all* attributes in one vectorized sweep.

    Sorts every feature column at once, builds per-column cumulative
    weighted class counts, and evaluates every candidate boundary of
    every attribute simultaneously; invalid positions (equal-value runs,
    leaves below ``min_leaf_weight``) are masked to ``-inf`` before a
    per-column first-argmax.  Every arithmetic step mirrors
    :func:`best_split_for_attribute` elementwise — axis-0 ``cumsum`` of a
    2-D array is computed per column exactly like the 1-D cumsums of the
    scalar path, and a masked full-column argmax picks the same first
    maximum as the scalar path's argmax over compacted candidates — so
    the produced :class:`Split` is bit-identical.
    """
    n, d = features.shape
    if n < 2:
        return None
    order = np.argsort(features, axis=0, kind="stable")
    v = np.take_along_axis(features, order, axis=0)
    y = labels[order]
    w = weights[order]
    w0 = np.where(y == 0, w, 0.0)
    w1 = np.where(y == 1, w, 0.0)
    cum0 = np.cumsum(w0, axis=0)
    cum1 = np.cumsum(w1, axis=0)
    total0, total1 = cum0[-1], cum1[-1]
    total = total0 + total1

    boundary = np.diff(v, axis=0) > 0  # (n-1, d)
    left0, left1 = cum0[:-1], cum1[:-1]
    right0, right1 = total0 - left0, total1 - left1
    wl = left0 + left1
    wr = right0 + right1
    ok = boundary & (wl >= min_leaf_weight) & (wr >= min_leaf_weight)

    def ent(c0: np.ndarray, c1: np.ndarray, mass: np.ndarray) -> np.ndarray:
        denom = np.maximum(mass, _EPS)
        p0 = np.clip(c0 / denom, _EPS, 1.0)
        p1 = np.clip(c1 / denom, _EPS, 1.0)
        return -(p0 * np.log(p0) + p1 * np.log(p1))

    with np.errstate(divide="ignore", invalid="ignore"):
        children = (wl * ent(left0, left1, wl) + wr * ent(right0, right1, wr)) / total
        # entropy() of the parent counts, term-summed: a zero class
        # contributes an exact 0.0, matching the scalar filtered sum.
        safe_total = np.where(total > 0, total, 1.0)
        pp0 = np.where(total0 > 0, total0 / safe_total, 1.0)
        pp1 = np.where(total1 > 0, total1 / safe_total, 1.0)
        parent = -(
            np.where(total0 > 0, pp0 * np.log(pp0), 0.0)
            + np.where(total1 > 0, pp1 * np.log(pp1), 0.0)
        )
        gains = parent - children
        pl, pr = wl / total, wr / total
        split_info = -(pl * np.log(pl) + pr * np.log(pr))
        ratios = gains / np.maximum(split_info, _EPS)

    gains_masked = np.where(ok, gains, -np.inf)
    best_rows = np.argmax(gains_masked, axis=0)
    cols = np.arange(d)
    best_gains = gains_masked[best_rows, cols]

    candidates: list[Split] = []
    for j in np.flatnonzero(best_gains > _EPS):
        i = best_rows[j]
        threshold = (v[i, j] + v[i + 1, j]) / 2.0
        candidates.append(Split(int(j), float(threshold), float(gains[i, j]), float(ratios[i, j])))
    return _select_split(candidates, use_gain_ratio)


def find_split(
    features: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray,
    min_leaf_weight: float,
    use_gain_ratio: bool,
) -> Split | None:
    """Search all attributes for the best split (dispatching entry point)."""
    if fitmode.scalar_fit_enabled():
        return find_split_scalar(features, labels, weights, min_leaf_weight, use_gain_ratio)
    return find_split_batch(features, labels, weights, min_leaf_weight, use_gain_ratio)


def grow_tree(
    features: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray,
    min_leaf_weight: float,
    use_gain_ratio: bool,
    max_depth: int = -1,
    _depth: int = 0,
) -> TreeNode:
    """Recursively grow an unpruned binary tree."""
    counts = np.array([weights[labels == 0].sum(), weights[labels == 1].sum()])
    node = TreeNode(counts=counts)
    pure = (counts <= _EPS).any()
    if pure or (0 <= max_depth <= _depth) or counts.sum() < 2 * min_leaf_weight:
        return node
    split = find_split(features, labels, weights, min_leaf_weight, use_gain_ratio)
    if split is None:
        return node
    mask = features[:, split.attribute] <= split.threshold
    node.attribute = split.attribute
    node.threshold = split.threshold
    node.left = grow_tree(
        features[mask], labels[mask], weights[mask],
        min_leaf_weight, use_gain_ratio, max_depth, _depth + 1,
    )
    node.right = grow_tree(
        features[~mask], labels[~mask], weights[~mask],
        min_leaf_weight, use_gain_ratio, max_depth, _depth + 1,
    )
    return node


def route(node: TreeNode, row: np.ndarray) -> TreeNode:
    """Follow a feature row from ``node`` down to its leaf.

    This is the scalar reference for the vectorized :class:`FlatTree`
    kernels: one row, one Python descent.  The batch paths below are
    differential-tested against it and must stay bit-identical.
    """
    while not node.is_leaf:
        assert node.attribute is not None and node.threshold is not None
        assert node.left is not None and node.right is not None
        node = node.left if row[node.attribute] <= node.threshold else node.right
    return node


def leaf_counts_matrix_scalar(node: TreeNode, features: np.ndarray) -> np.ndarray:
    """Per-row leaf class counts via the scalar :func:`route` reference.

    Retained (pre-vectorization hot path) for differential tests and the
    before/after inference benchmark; production prediction goes through
    :class:`FlatTree`.
    """
    out = np.zeros((features.shape[0], 2))
    for i in range(features.shape[0]):
        out[i] = route(node, features[i]).counts
    return out


class FlatTree:
    """Array form of a fitted :class:`TreeNode` tree for batch inference.

    The pointer tree is flattened (preorder) into parallel arrays —
    split attribute (-1 at leaves), threshold, left/right child index,
    and leaf class counts — so a whole feature matrix descends at once:
    every iteration of :meth:`descend` advances *all* rows still at an
    internal node by one level with masked gathers, instead of walking
    one Python node per row per level.  Comparisons are the same
    ``row[attribute] <= threshold`` the scalar :func:`route` performs,
    so leaf assignment is bit-identical.
    """

    __slots__ = ("attribute", "threshold", "left", "right", "counts", "nodes")

    def __init__(self, root: TreeNode) -> None:
        nodes: list[TreeNode] = []
        stack = [root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                stack.append(node.right)
                stack.append(node.left)
        index = {id(node): i for i, node in enumerate(nodes)}
        n = len(nodes)
        self.nodes = tuple(nodes)
        self.attribute = np.full(n, -1, dtype=np.intp)
        self.threshold = np.full(n, np.nan)
        self.left = np.full(n, -1, dtype=np.intp)
        self.right = np.full(n, -1, dtype=np.intp)
        self.counts = np.empty((n, 2))
        for i, node in enumerate(nodes):
            self.counts[i] = node.counts
            if not node.is_leaf:
                assert node.attribute is not None and node.threshold is not None
                self.attribute[i] = node.attribute
                self.threshold[i] = node.threshold
                self.left[i] = index[id(node.left)]
                self.right[i] = index[id(node.right)]

    @classmethod
    def from_arrays(
        cls,
        attribute: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        counts: np.ndarray,
    ) -> "FlatTree":
        """Rebuild a flat tree (and its pointer form) from parallel arrays.

        Inverse of the flattening constructor: the arrays become the live
        inference state verbatim (they may be read-only memory maps), and
        the :class:`TreeNode` pointer graph is re-linked so structural
        accessors (``nodes[0]`` is the root, as in preorder flattening)
        keep working on loaded models.
        """
        attribute = np.asanyarray(attribute)
        threshold = np.asanyarray(threshold)
        left = np.asanyarray(left)
        right = np.asanyarray(right)
        counts = np.asanyarray(counts)
        n = attribute.shape[0]
        if n == 0 or counts.shape != (n, 2):
            raise ValueError("tree arrays are empty or misaligned")
        shapes = (threshold.shape, left.shape, right.shape)
        if any(shape != (n,) for shape in shapes):
            raise ValueError("tree arrays are misaligned")
        nodes = [TreeNode(counts=counts[i]) for i in range(n)]
        for i in range(n):
            if attribute[i] >= 0:
                li, ri = int(left[i]), int(right[i])
                if not (0 <= li < n and 0 <= ri < n):
                    raise ValueError(f"child index out of range at node {i}")
                node = nodes[i]
                node.attribute = int(attribute[i])
                node.threshold = float(threshold[i])
                node.left = nodes[li]
                node.right = nodes[ri]
        flat = cls.__new__(cls)
        flat.nodes = tuple(nodes)
        flat.attribute = attribute
        flat.threshold = threshold
        flat.left = left
        flat.right = right
        flat.counts = counts
        return flat

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def descend(self, features: np.ndarray) -> np.ndarray:
        """Flat index of the leaf each row lands in, shape ``(n,)``."""
        n, n_cols = features.shape
        flat = np.ascontiguousarray(features).reshape(-1)
        cur = np.zeros(n, dtype=np.intp)
        if self.attribute[0] < 0:  # root is a leaf
            return cur
        active = np.arange(n)
        while active.size:
            node = cur[active]
            attr = self.attribute[node]
            values = flat.take(active * n_cols + attr)
            go_left = values <= self.threshold[node]
            nxt = np.where(go_left, self.left[node], self.right[node])
            cur[active] = nxt
            active = active[self.attribute[nxt] >= 0]
        return cur

    def leaf_counts(self, features: np.ndarray) -> np.ndarray:
        """Class counts of the leaf each row lands in, shape ``(n, 2)``."""
        return self.counts[self.descend(features)]

    def path_class_mass(
        self, features: np.ndarray, labels: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """Weighted class mass deposited at every node along each row's
        root-to-leaf path, shape ``(n_nodes, 2)``.

        This is the batch form of REPTree's held-out prune-count
        accumulation.  ``np.add.at`` applies duplicate indices in row
        order — the same order the scalar per-row loop adds them — so
        the accumulated floats are bit-identical.
        """
        acc = np.zeros((self.n_nodes, 2))
        cur = np.zeros(features.shape[0], dtype=np.intp)
        active = np.arange(features.shape[0])
        while active.size:
            node = cur[active]
            np.add.at(acc, (node, labels[active]), weights[active])
            internal = self.attribute[node] >= 0
            active = active[internal]
            node = cur[active]
            go_left = (
                features[active, self.attribute[node]] <= self.threshold[node]
            )
            cur[active] = np.where(go_left, self.left[node], self.right[node])
        return acc


def leaf_counts_matrix(node: TreeNode, features: np.ndarray) -> np.ndarray:
    """Class counts of the leaf each row lands in, shape ``(n, 2)``.

    Convenience wrapper that flattens on the fly; fitted classifiers
    cache their :class:`FlatTree` instead of re-flattening per call.
    """
    return FlatTree(node).leaf_counts(features)
