"""Feature standardization shared by the gradient/margin-based learners.

HPC counts span orders of magnitude (cycles in the tens of millions,
iTLB misses in the hundreds), so MLP/SGD/SMO standardize features to
zero mean and unit variance at fit time, exactly as WEKA's filters do
for those classifiers.  Constant features get unit scale so they map to
zero instead of dividing by zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StandardScaler:
    """Fitted per-feature affine normalizer ``(x - mean) / scale``."""

    mean: np.ndarray
    scale: np.ndarray

    @classmethod
    def fit(cls, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=float)
        mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale = np.where(scale > 0, scale, 1.0)
        return cls(mean=mean, scale=scale)

    def transform(self, features: np.ndarray) -> np.ndarray:
        return (np.asarray(features, dtype=float) - self.mean) / self.scale
