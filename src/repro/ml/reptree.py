"""REPTree: fast tree with reduced-error pruning, as in WEKA's ``REPTree``.

Grows with plain information gain (cheaper than C4.5's gain ratio), then
prunes bottom-up against a held-out fold: a subtree is replaced by a leaf
whenever the leaf makes no more errors on the held-out data than the
subtree does (reduced-error pruning).  WEKA's ``numFolds`` default of 3 —
grow on 2/3 of the data, prune with the remaining 1/3 — is kept.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_features, check_training_set, proba_from_counts
from repro.ml.tree import FlatTree, TreeNode, grow_tree, route


class REPTree(Classifier):
    """Information-gain tree with reduced-error pruning.

    Args:
        num_folds: the pruning fold count; one fold is held out for
            pruning, the rest grow the tree (WEKA default 3).
        min_instances: minimum weighted instances per leaf (WEKA default 2).
        max_depth: maximum tree depth, -1 for unlimited (WEKA default).
        no_pruning: grow only (WEKA ``-P``).
        seed: RNG seed for the fold shuffle (WEKA ``-S``).
    """

    supports_sample_weight = True

    def __init__(
        self,
        num_folds: int = 3,
        min_instances: int = 2,
        max_depth: int = -1,
        no_pruning: bool = False,
        seed: int = 1,
    ) -> None:
        super().__init__()
        if num_folds < 2:
            raise ValueError("num_folds must be >= 2")
        if min_instances < 1:
            raise ValueError("min_instances must be >= 1")
        self.num_folds = num_folds
        self.min_instances = min_instances
        self.max_depth = max_depth
        self.no_pruning = no_pruning
        self.seed = seed
        self.params = {
            "num_folds": num_folds,
            "min_instances": min_instances,
            "max_depth": max_depth,
            "no_pruning": no_pruning,
            "seed": seed,
        }
        self.root_: TreeNode | None = None
        self._flat: FlatTree | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def _accumulate_prune_counts_scalar(
        node: TreeNode, features: np.ndarray, labels: np.ndarray, weights: np.ndarray
    ) -> None:
        """Scalar reference for the held-out path accumulation.

        Retained for differential tests and the before/after inference
        benchmark; :meth:`fit` uses the batch
        :meth:`~repro.ml.tree.FlatTree.path_class_mass` kernel.
        """
        for i in range(features.shape[0]):
            current = node
            while True:
                current.prune_counts[labels[i]] += weights[i]
                if current.is_leaf:
                    break
                assert current.attribute is not None and current.threshold is not None
                assert current.left is not None and current.right is not None
                current = (
                    current.left
                    if features[i, current.attribute] <= current.threshold
                    else current.right
                )

    def _accumulate_prune_counts(
        self, node: TreeNode, features: np.ndarray, labels: np.ndarray, weights: np.ndarray
    ) -> None:
        """Record held-out class mass at every node along each row's path."""
        flat = FlatTree(node)
        mass = flat.path_class_mass(features, labels, weights)
        for i, tree_node in enumerate(flat.nodes):
            tree_node.prune_counts += mass[i]

    def _subtree_heldout_errors(self, node: TreeNode) -> float:
        if node.is_leaf:
            return float(node.prune_counts.sum() - node.prune_counts[node.majority])
        assert node.left is not None and node.right is not None
        return self._subtree_heldout_errors(node.left) + self._subtree_heldout_errors(node.right)

    def _reduced_error_prune(self, node: TreeNode) -> None:
        if node.is_leaf:
            return
        assert node.left is not None and node.right is not None
        self._reduced_error_prune(node.left)
        self._reduced_error_prune(node.right)
        leaf_errors = float(node.prune_counts.sum() - node.prune_counts[node.majority])
        if leaf_errors <= self._subtree_heldout_errors(node):
            node.make_leaf()

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "REPTree":
        features, labels, weights = check_training_set(features, labels, sample_weight)
        rng = np.random.default_rng(self.seed)
        if self.no_pruning or len(labels) < self.num_folds * 2:
            self.root_ = grow_tree(
                features, labels, weights,
                min_leaf_weight=float(self.min_instances),
                use_gain_ratio=False,
                max_depth=self.max_depth,
            )
            self._flat = FlatTree(self.root_)
            self.fitted_ = True
            return self
        order = rng.permutation(len(labels))
        n_prune = len(labels) // self.num_folds
        prune_idx, grow_idx = order[:n_prune], order[n_prune:]
        self.root_ = grow_tree(
            features[grow_idx], labels[grow_idx], weights[grow_idx],
            min_leaf_weight=float(self.min_instances),
            use_gain_ratio=False,
            max_depth=self.max_depth,
        )
        self._accumulate_prune_counts(
            self.root_, features[prune_idx], labels[prune_idx], weights[prune_idx]
        )
        self._reduced_error_prune(self.root_)
        # pruning rewired the tree in place; flatten the final shape once
        self._flat = FlatTree(self.root_)
        self.fitted_ = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        assert self._flat is not None
        return proba_from_counts(self._flat.leaf_counts(features))

    # -- serialization ---------------------------------------------------
    def export_artifact(self) -> tuple[dict, dict[str, np.ndarray]]:
        self._require_fitted()
        assert self._flat is not None
        flat = self._flat
        return {"params": dict(self.params)}, {
            "tree_attribute": flat.attribute,
            "tree_threshold": flat.threshold,
            "tree_left": flat.left,
            "tree_right": flat.right,
            "tree_counts": flat.counts,
        }

    @classmethod
    def from_artifact(cls, spec: dict, arrays: dict) -> "REPTree":
        model = cls(**spec["params"])
        model._flat = FlatTree.from_arrays(
            arrays["tree_attribute"],
            arrays["tree_threshold"],
            arrays["tree_left"],
            arrays["tree_right"],
            arrays["tree_counts"],
        )
        model.root_ = model._flat.nodes[0]
        model.fitted_ = True
        return model

    def predict_leaf(self, row: np.ndarray) -> TreeNode:
        """Leaf node a single feature row routes to (for introspection)."""
        self._require_fitted()
        assert self.root_ is not None
        return route(self.root_, np.asarray(row, dtype=float))

    @property
    def tree_size(self) -> int:
        self._require_fitted()
        assert self.root_ is not None
        return self.root_.n_nodes()

    @property
    def n_leaves(self) -> int:
        self._require_fitted()
        assert self.root_ is not None
        return self.root_.n_leaves()

    @property
    def depth(self) -> int:
        self._require_fitted()
        assert self.root_ is not None
        return self.root_.depth()
