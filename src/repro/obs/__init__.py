"""repro.obs — zero-dependency observability for the evaluation pipeline.

Five pieces, all free when disabled:

* :mod:`repro.obs.trace` — span-based :class:`Tracer` (context-manager
  API, monotonic durations, parent/child nesting, per-worker buffers)
  emitting JSONL trace events.
* :mod:`repro.obs.metrics` — :class:`Registry` of counters, gauges, and
  fixed-bucket histograms with Prometheus text and JSON snapshot
  exporters, mergeable across worker processes.
* :mod:`repro.obs.sink` / :mod:`repro.obs.stats` — the unified matrix
  progress sink and the renderers behind ``repro-hmd stats``.
* :mod:`repro.obs.stream` — followers that tail a live trace/metrics
  pair as it grows (rotation- and truncation-tolerant).
* :mod:`repro.obs.health` — sliding-window signals, declarative alert
  rules, and SLO/error-budget tracking behind ``repro-hmd watch`` and
  the monitors' in-process ``health=`` hook.

Instrumented components (``MatrixRunner``, ``ResultCache``,
``RuntimeMonitor``, ``FleetMonitor``, the CLI) default to the shared
:data:`NULL_TRACER` and :data:`NULL_REGISTRY` (and ``health=None``), so
instrumentation costs one attribute check unless a run opts in with
``--trace-out`` / ``--metrics-out`` / ``--health-out``.
"""

from repro.obs.health import (
    HEALTH_SCHEMA_VERSION,
    SEVERITIES,
    SIGNAL_NAMES,
    AlertRule,
    AlertState,
    HealthConfigError,
    HealthEvaluator,
    SLO,
    SlidingWindowSignals,
    health_table,
    load_alert_rules,
    parse_alert_spec,
    parse_slo,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    FAST_LATENCY_BUCKETS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    Registry,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.sink import MatrixProgressSink
from repro.obs.stats import (
    SpanStat,
    aggregate_spans,
    histogram_quantile,
    load_metrics,
    metrics_table,
    span_table,
    toplevel_wall_seconds,
)
from repro.obs.stream import MetricsFollower, TraceFollower
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    load_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "FAST_LATENCY_BUCKETS",
    "HEALTH_SCHEMA_VERSION",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "SEVERITIES",
    "SIGNAL_NAMES",
    "TRACE_SCHEMA_VERSION",
    "AlertRule",
    "AlertState",
    "Counter",
    "Gauge",
    "HealthConfigError",
    "HealthEvaluator",
    "Histogram",
    "MatrixProgressSink",
    "MetricsError",
    "MetricsFollower",
    "Registry",
    "SLO",
    "SlidingWindowSignals",
    "Span",
    "SpanStat",
    "Tracer",
    "TraceFollower",
    "aggregate_spans",
    "health_table",
    "histogram_quantile",
    "load_alert_rules",
    "load_metrics",
    "load_trace",
    "merge_snapshots",
    "metrics_table",
    "parse_alert_spec",
    "parse_slo",
    "snapshot_delta",
    "span_table",
    "toplevel_wall_seconds",
]
