"""repro.obs — zero-dependency observability for the evaluation pipeline.

Six pieces, all free when disabled:

* :mod:`repro.obs.trace` — span-based :class:`Tracer` (context-manager
  API, monotonic durations, parent/child nesting, per-worker buffers)
  emitting JSONL trace events.
* :mod:`repro.obs.metrics` — :class:`Registry` of counters, gauges, and
  fixed-bucket histograms with Prometheus text and JSON snapshot
  exporters, mergeable across worker processes.
* :mod:`repro.obs.sink` / :mod:`repro.obs.stats` — the unified matrix
  progress sink and the renderers behind ``repro-hmd stats``.
* :mod:`repro.obs.stream` — followers that tail a live trace/metrics
  pair as it grows (rotation- and truncation-tolerant).
* :mod:`repro.obs.health` — sliding-window signals, declarative alert
  rules, and SLO/error-budget tracking behind ``repro-hmd watch`` and
  the monitors' in-process ``health=`` hook.
* :mod:`repro.obs.archive` / :mod:`repro.obs.rollup` — the fleet
  history: per-run traces ingested into content-addressed columnar
  segments, and cross-run roll-up queries (detection-rate trends, alert
  frequency, exact merged latency percentiles) behind
  ``repro-hmd report``.
* :mod:`repro.obs.quality` — model-quality and drift observability:
  train-time :class:`ReferenceProfile` histograms, a PSI/KS/ECE
  :class:`DriftScorer`, and the streaming :class:`QualityTracker`
  behind ``repro-hmd profile`` and the monitors' ``quality=`` hook.

Instrumented components (``MatrixRunner``, ``ResultCache``,
``RuntimeMonitor``, ``FleetMonitor``, the CLI) default to the shared
:data:`NULL_TRACER` and :data:`NULL_REGISTRY` (and ``health=None``), so
instrumentation costs one attribute check unless a run opts in with
``--trace-out`` / ``--metrics-out`` / ``--health-out``.
"""

from repro.obs.archive import (
    ARCHIVE_SCHEMA_VERSION,
    DRIFT_RULE,
    Archive,
    ArchiveError,
    ArchiveSink,
    IngestResult,
    SegmentData,
    normalize_events,
    normalize_metrics,
    segment_content_id,
)
from repro.obs.health import (
    HEALTH_SCHEMA_VERSION,
    SEVERITIES,
    SIGNAL_NAMES,
    AlertRule,
    AlertState,
    HealthConfigError,
    HealthEvaluator,
    SLO,
    SlidingWindowSignals,
    health_table,
    load_alert_rules,
    parse_alert_spec,
    parse_slo,
)
from repro.obs.quality import (
    DEFAULT_QUALITY_RULES,
    QUALITY_SCHEMA_VERSION,
    QUALITY_SIGNAL_NAMES,
    DriftScorer,
    QualityAlertRule,
    QualityError,
    QualityTracker,
    ReferenceProfile,
    build_reference_profile,
    parse_quality_alert_spec,
    quality_table,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    FAST_LATENCY_BUCKETS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    Registry,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.rollup import (
    AlertFrame,
    VerdictFrame,
    alert_frequency,
    detection_rate_trend,
    drift_trend,
    fleet_report,
    fleet_report_data,
    latency_quantiles,
    load_frames,
    merged_metrics,
    select_segments,
)
from repro.obs.sink import MatrixProgressSink
from repro.obs.stats import (
    SpanStat,
    aggregate_spans,
    histogram_quantile,
    load_metrics,
    metrics_table,
    span_table,
    toplevel_wall_seconds,
)
from repro.obs.stream import MetricsFollower, TraceFollower
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    load_trace,
)

__all__ = [
    "ARCHIVE_SCHEMA_VERSION",
    "Archive",
    "ArchiveError",
    "ArchiveSink",
    "AlertFrame",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_QUALITY_RULES",
    "DRIFT_RULE",
    "FAST_LATENCY_BUCKETS",
    "HEALTH_SCHEMA_VERSION",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "QUALITY_SCHEMA_VERSION",
    "QUALITY_SIGNAL_NAMES",
    "SEVERITIES",
    "SIGNAL_NAMES",
    "TRACE_SCHEMA_VERSION",
    "AlertRule",
    "AlertState",
    "Counter",
    "DriftScorer",
    "Gauge",
    "HealthConfigError",
    "HealthEvaluator",
    "Histogram",
    "IngestResult",
    "MatrixProgressSink",
    "MetricsError",
    "MetricsFollower",
    "QualityAlertRule",
    "QualityError",
    "QualityTracker",
    "ReferenceProfile",
    "Registry",
    "SLO",
    "SegmentData",
    "SlidingWindowSignals",
    "Span",
    "SpanStat",
    "Tracer",
    "TraceFollower",
    "VerdictFrame",
    "aggregate_spans",
    "alert_frequency",
    "build_reference_profile",
    "detection_rate_trend",
    "drift_trend",
    "fleet_report",
    "fleet_report_data",
    "health_table",
    "histogram_quantile",
    "latency_quantiles",
    "load_alert_rules",
    "load_frames",
    "load_metrics",
    "load_trace",
    "merge_snapshots",
    "merged_metrics",
    "metrics_table",
    "normalize_events",
    "normalize_metrics",
    "parse_alert_spec",
    "parse_quality_alert_spec",
    "parse_slo",
    "quality_table",
    "segment_content_id",
    "select_segments",
    "snapshot_delta",
    "span_table",
    "toplevel_wall_seconds",
]
