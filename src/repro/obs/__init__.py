"""repro.obs — zero-dependency observability for the evaluation pipeline.

Three pieces, all free when disabled:

* :mod:`repro.obs.trace` — span-based :class:`Tracer` (context-manager
  API, monotonic durations, parent/child nesting, per-worker buffers)
  emitting JSONL trace events.
* :mod:`repro.obs.metrics` — :class:`Registry` of counters, gauges, and
  fixed-bucket histograms with Prometheus text and JSON snapshot
  exporters, mergeable across worker processes.
* :mod:`repro.obs.sink` / :mod:`repro.obs.stats` — the unified matrix
  progress sink and the renderers behind ``repro-hmd stats``.

Instrumented components (``MatrixRunner``, ``ResultCache``,
``RuntimeMonitor``, the CLI) default to the shared :data:`NULL_TRACER`
and :data:`NULL_REGISTRY`, so instrumentation costs one attribute check
unless a run opts in with ``--trace-out`` / ``--metrics-out``.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    FAST_LATENCY_BUCKETS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    Registry,
)
from repro.obs.sink import MatrixProgressSink
from repro.obs.stats import (
    SpanStat,
    aggregate_spans,
    load_metrics,
    metrics_table,
    span_table,
    toplevel_wall_seconds,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    load_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "FAST_LATENCY_BUCKETS",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MatrixProgressSink",
    "MetricsError",
    "Registry",
    "Span",
    "SpanStat",
    "Tracer",
    "aggregate_spans",
    "load_metrics",
    "load_trace",
    "metrics_table",
    "span_table",
    "toplevel_wall_seconds",
]
