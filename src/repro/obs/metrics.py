"""Counters, gauges, and histograms with Prometheus-style export.

A :class:`Registry` hands out named instruments and renders them either
as a Prometheus text exposition (``to_prometheus``) or as a JSON
snapshot (``snapshot`` / ``dump``).  Histograms use *fixed* bucket
boundaries chosen at creation — observation is O(log buckets) and two
snapshots with the same boundaries merge exactly, which is what lets
:class:`~repro.analysis.parallel.ParallelMatrixRunner` add worker
snapshots into the parent registry without precision games.

Like the tracer, everything is free when off: a ``Registry`` built with
``enabled=False`` (or the shared :data:`NULL_REGISTRY`) returns one
shared null instrument whose ``inc``/``set``/``observe`` are empty
methods, so permanent instrumentation costs nothing in production runs
that don't ask for metrics.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from pathlib import Path

from repro.ioutil import atomic_write_text

#: Wall-time buckets for second-scale stages (fit/eval/cache writes).
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Microsecond-scale buckets for per-window run-time classification.
FAST_LATENCY_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
    5e-4, 1e-3, 2.5e-3, 1e-2, 0.1,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class MetricsError(RuntimeError):
    """Bad metric name, kind collision, or unmergeable snapshot."""


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled registries."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, value: float, n: int) -> None:
        pass


#: The one null instrument every disabled registry hands out.
NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """Monotonically increasing count (cache hits, cells trained, ...)."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """Last-written value (current detection latency, queue depth, ...)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Distribution over fixed, ascending bucket boundaries.

    Buckets follow Prometheus ``le`` semantics: an observation lands in
    the first bucket whose upper bound is >= the value, with an implicit
    final +Inf bucket; ``counts`` has ``len(buckets) + 1`` entries.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(
        self, name: str, help: str = "", buckets: tuple = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise MetricsError(
                f"histogram {name} needs strictly ascending, non-empty buckets"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, value: float, n: int) -> None:
        """Record ``n`` identical observations in O(log buckets).

        Bucket counts and ``count`` update exactly as ``n`` calls to
        :meth:`observe` would, so snapshots stay merge-compatible; the
        sum is accumulated as ``value * n`` in one rounding step instead
        of ``n`` sequential ones.
        """
        if n < 0:
            raise ValueError(f"histogram {self.name} cannot observe {n} times")
        if n == 0:
            return
        self.counts[bisect_left(self.buckets, value)] += n
        self.sum += value * n
        self.count += n

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Registry:
    """Named instrument registry with text/JSON exporters.

    Args:
        enabled: when False every ``counter``/``gauge``/``histogram``
            call returns the shared :data:`NULL_INSTRUMENT` and exports
            are empty — instrumented code needs no conditionals.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    # -- instrument creation (get-or-create, kind-checked) -------------
    def _get(self, cls, name: str, help: str, **kwargs):
        if not self.enabled:
            return NULL_INSTRUMENT
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, help, **kwargs)
            elif not isinstance(instrument, cls):
                raise MetricsError(
                    f"metric {name} already registered as {instrument.kind}, "
                    f"not {cls.kind}"
                )
            elif kwargs.get("buckets") is not None and tuple(
                float(b) for b in kwargs["buckets"]
            ) != instrument.buckets:
                raise MetricsError(
                    f"histogram {name} already registered with different buckets"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    # -- snapshots & merging -------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready state of every instrument, grouped by kind."""
        snap: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            for name, inst in sorted(self._instruments.items()):
                if inst.kind == "counter":
                    snap["counters"][name] = {"help": inst.help, "value": inst.value}
                elif inst.kind == "gauge":
                    snap["gauges"][name] = {"help": inst.help, "value": inst.value}
                else:
                    snap["histograms"][name] = {
                        "help": inst.help,
                        "buckets": list(inst.buckets),
                        "counts": list(inst.counts),
                        "sum": inst.sum,
                        "count": inst.count,
                    }
        return snap

    def reset(self) -> None:
        """Zero every instrument (kept registered, buckets preserved)."""
        with self._lock:
            for inst in self._instruments.values():
                if inst.kind == "histogram":
                    inst.counts = [0] * len(inst.counts)
                    inst.sum = 0.0
                    inst.count = 0
                else:
                    inst.value = 0.0

    def drain(self) -> dict:
        """Snapshot then reset — the worker-process hand-off primitive."""
        snap = self.snapshot()
        self.reset()
        return snap

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histograms add (histogram bucket boundaries must
        match); gauges take the incoming value (last write wins).  A
        disabled registry ignores the merge.
        """
        if not self.enabled:
            return
        for name, data in snapshot.get("counters", {}).items():
            self.counter(name, data.get("help", "")).inc(data["value"])
        for name, data in snapshot.get("gauges", {}).items():
            self.gauge(name, data.get("help", "")).set(data["value"])
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(
                name, data.get("help", ""), buckets=tuple(data["buckets"])
            )
            counts = data["counts"]
            if len(counts) != len(hist.counts):
                raise MetricsError(f"histogram {name} snapshot has wrong bucket count")
            for i, c in enumerate(counts):
                hist.counts[i] += c
            hist.sum += data["sum"]
            hist.count += data["count"]

    # -- exporters ------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format (histograms cumulative)."""
        lines = []
        snap = self.snapshot()
        for name, data in snap["counters"].items():
            lines += _prom_header(name, data["help"], "counter")
            lines.append(f"{name} {_fmt(data['value'])}")
        for name, data in snap["gauges"].items():
            lines += _prom_header(name, data["help"], "gauge")
            lines.append(f"{name} {_fmt(data['value'])}")
        for name, data in snap["histograms"].items():
            lines += _prom_header(name, data["help"], "histogram")
            cumulative = 0
            for bound, count in zip(data["buckets"], data["counts"]):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {data["count"]}')
            lines.append(f"{name}_sum {_fmt(data['sum'])}")
            lines.append(f"{name}_count {data['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=1)

    def dump(self, path: str | Path) -> None:
        """Atomically write the JSON snapshot to ``path``.

        A crash mid-dump must leave the previous snapshot readable — the
        ``stats``/``watch``/``report --ingest-metrics`` consumers fail
        hard on torn JSON.
        """
        atomic_write_text(path, self.to_json())


def merge_snapshots(snapshots) -> dict:
    """Exactly merge several registry snapshots into one.

    Counters and histogram buckets add; gauges take the last snapshot's
    value — the same semantics :meth:`Registry.merge` applies when a
    parallel runner folds worker registries into the parent.  This is
    what lets ``repro-hmd stats`` accept one ``--metrics-out`` file per
    worker and render them as a single run.
    """
    registry = Registry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


def snapshot_delta(old: dict, new: dict) -> dict:
    """The change from ``old`` to ``new``, as a mergeable snapshot.

    Counters and histogram bucket counts subtract; gauges take the new
    value.  A value that went *backwards* means the producer restarted
    and is re-accumulating from zero — monotone instruments cannot
    regress within one process — so the regression is treated as a
    reset and the whole new value is the increment (for histograms, any
    regressed bucket or total resets the whole histogram, since one
    restart resets every bucket together).  Swallowing the regression
    as "no change" instead would silently drop everything the restarted
    run observed until it overtook the old totals.  The result is
    itself a valid snapshot: absorbing every delta via
    :meth:`Registry.merge` reconstructs the cumulative state, which is
    how a live watcher folds a growing metrics file into a sliding
    window without double counting.
    """
    delta: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for name, data in new.get("counters", {}).items():
        previous = old.get("counters", {}).get(name, {}).get("value", 0.0)
        value = data["value"]
        delta["counters"][name] = {
            "help": data.get("help", ""),
            "value": value if value < previous else value - previous,
        }
    for name, data in new.get("gauges", {}).items():
        delta["gauges"][name] = dict(data)
    for name, data in new.get("histograms", {}).items():
        previous = old.get("histograms", {}).get(name)
        reset = (
            previous is None
            or list(previous["buckets"]) != list(data["buckets"])
            or data["count"] < previous["count"]
            or data["sum"] < previous["sum"]
            or any(c < p for c, p in zip(data["counts"], previous["counts"]))
        )
        if reset:
            entry = dict(data)
            entry["counts"] = list(data["counts"])
            delta["histograms"][name] = entry
            continue
        delta["histograms"][name] = {
            "help": data.get("help", ""),
            "buckets": list(data["buckets"]),
            "counts": [c - p for c, p in zip(data["counts"], previous["counts"])],
            "sum": data["sum"] - previous["sum"],
            "count": data["count"] - previous["count"],
        }
    return delta


def _prom_header(name: str, help: str, kind: str) -> list[str]:
    lines = []
    if help:
        # Text exposition format: HELP text escapes backslash first
        # (so escaped newlines don't double-escape), then newline.
        escaped = help.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {name} {escaped}")
    lines.append(f"# TYPE {name} {kind}")
    return lines


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


#: Shared disabled registry — the default for every instrumented component.
NULL_REGISTRY = Registry(enabled=False)
