"""Columnar fleet-history archive: per-run telemetry into queryable segments.

A fleet is operated through its history — detection-rate trends, alert
frequency, latency percentiles over days of traffic — but the system's
run artifacts are per-run JSONL traces and JSON metrics snapshots.  This
module rotates those artifacts into a compact, append-only **archive**
(flat files + numpy, no database), following the ingest → archive →
report pipeline of per-host counter aggregators like TACC Stats:

* :class:`Archive` — one directory holding content-addressed columnar
  ``.npz`` segments (one per ingested run) under ``segments/<id[:2]>/``
  plus a JSON ``manifest.json`` indexing them.  Segment IDs are SHA-256
  over the segment's normalized content — the same content-addressing
  discipline as :mod:`repro.analysis.cache` — so re-ingesting the same
  run reproduces the same ID and is a **no-op** (idempotent manifest),
  and a live-archived run deduplicates against a later re-ingest of the
  trace file it dumped (paired with its metrics snapshot, since the
  snapshot is part of the addressed content).  All writes are atomic (tempfile +
  ``os.replace``), so a crash mid-ingest leaves the previous archive
  state intact, never a truncated segment or manifest.
* :func:`normalize_events` — turns ``serve.verdict`` / ``fleet.verdict``
  / ``monitor.verdict`` / ``serve.alert`` / ``health.alert`` trace
  events and span events into the archive's normalized record schema.
* :class:`ArchiveSink` — the live hook :class:`~repro.serve.service.DetectionService`
  feeds on its verdict path, so a service can archive its history even
  when tracing is disabled.

Segments store timestamps, interned host/app/rule strings, verdict
flags, and the run's full metrics snapshot (including classify-latency
histograms whose fixed buckets merge exactly across segments — see
:func:`repro.obs.metrics.merge_snapshots`).  Query and report rendering
live in :mod:`repro.obs.rollup`.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.trace import load_trace

#: Schema tag of the archive layout (bump on incompatible change).
ARCHIVE_SCHEMA_VERSION = 1

#: Verdict-bearing trace event names → archive source tag.
VERDICT_EVENTS = {
    "serve.verdict": "serve",
    "fleet.verdict": "fleet",
    "monitor.verdict": "monitor",
}

#: Rule name under which per-host sliding-vote alerts are archived.
HOST_VOTE_RULE = "host_vote"

#: Rule name under which per-execution drift observations are archived
#: (``quality.drift`` events land as informational alert rows; the
#: drift *trend* roll-up filters on this constant).
DRIFT_RULE = "quality_drift"


class ArchiveError(RuntimeError):
    """The archive directory, a segment, or the manifest is unusable."""


# ---------------------------------------------------------------------------
# Normalized record schema (plain dicts; the hashable canonical form)
# ---------------------------------------------------------------------------

_VERDICT_FIELDS = (
    "ts", "source", "host", "app", "execution", "is_malware", "degraded",
    "malware_fraction", "n_windows", "n_windows_lost", "latency",
)
_ALERT_FIELDS = ("ts", "rule", "host", "severity", "state", "value")
_SPAN_FIELDS = ("name", "ts", "dur")


def verdict_record(
    *,
    ts: float,
    source: str,
    host: str,
    app: str,
    execution: int,
    is_malware: bool,
    malware_fraction: float,
    n_windows: int,
    n_windows_lost: int = 0,
    degraded: bool = False,
    latency: int | None = None,
) -> dict:
    """One normalized verdict row (plain python types, hash-stable)."""
    return {
        "ts": float(ts),
        "source": str(source),
        "host": str(host),
        "app": str(app),
        "execution": int(execution),
        "is_malware": bool(is_malware),
        "degraded": bool(degraded),
        "malware_fraction": float(malware_fraction),
        "n_windows": int(n_windows),
        "n_windows_lost": int(n_windows_lost),
        "latency": -1 if latency is None else int(latency),
    }


def alert_record(
    *, ts: float, rule: str, host: str, severity: str, state: str, value: float
) -> dict:
    """One normalized alert row (a host-vote trip or a rule transition)."""
    return {
        "ts": float(ts),
        "rule": str(rule),
        "host": str(host),
        "severity": str(severity),
        "state": str(state),
        "value": float(value),
    }


def normalize_events(events: list[dict]) -> tuple[list[dict], list[dict], list[dict]]:
    """Split raw trace events into (verdicts, alerts, spans) records.

    Verdict events (``serve.verdict`` / ``fleet.verdict`` /
    ``monitor.verdict``) become verdict rows; ``monitor.verdict`` events
    carry no execution index, so they are numbered in stream order.
    ``serve.alert`` host-vote trips, ``health.alert`` / ``quality.alert``
    rule transitions, and per-execution ``quality.drift`` observations
    (archived under :data:`DRIFT_RULE` with their worst per-feature PSI
    as the value, feeding the drift-trend roll-up) become alert rows;
    span events become (name, ts, dur) rows.  Unknown event names are
    ignored, so traces from future instrumentation still ingest.
    """
    verdicts: list[dict] = []
    alerts: list[dict] = []
    spans: list[dict] = []
    n_unindexed = 0
    for event in events:
        kind = event.get("type")
        name = event.get("name", "")
        ts = float(event.get("ts", 0.0))
        if kind == "span":
            spans.append(
                {"name": str(name), "ts": ts, "dur": float(event.get("dur", 0.0))}
            )
            continue
        if kind != "event":
            continue
        attrs = event.get("attrs", {})
        source = VERDICT_EVENTS.get(name)
        if source is not None:
            app = attrs.get("app", "")
            execution = attrs.get("index")
            if execution is None:
                execution = n_unindexed
                n_unindexed += 1
            verdicts.append(
                verdict_record(
                    ts=ts,
                    source=source,
                    host=attrs.get("host", app),
                    app=app,
                    execution=execution,
                    is_malware=attrs.get("is_malware", False),
                    malware_fraction=attrs.get("malware_fraction", 0.0),
                    n_windows=attrs.get("n_windows", 0),
                    n_windows_lost=attrs.get("n_windows_lost", 0),
                    degraded=attrs.get("degraded", False),
                    latency=attrs.get("detection_latency_windows"),
                )
            )
        elif name == "serve.alert":
            alerts.append(
                alert_record(
                    ts=ts,
                    rule=HOST_VOTE_RULE,
                    host=attrs.get("host", ""),
                    severity="critical",
                    state="firing",
                    value=attrs.get("fraction", 0.0),
                )
            )
        elif name in ("health.alert", "quality.alert"):
            alerts.append(
                alert_record(
                    ts=ts,
                    rule=attrs.get("rule", ""),
                    host=attrs.get("host", "*"),
                    severity=attrs.get("severity", ""),
                    state=attrs.get("state", ""),
                    value=attrs.get("value", 0.0),
                )
            )
        elif name == "quality.drift":
            # Two rows per observation: the fleet-level ("*") row carries
            # the global-window PSI the alert rules evaluate; the
            # per-host row carries that host's own window PSI (NaN until
            # the host accumulates enough evidence), so the drift-trend
            # roll-up reports genuinely per-host series.
            value = attrs.get("max_feature_psi")
            alerts.append(
                alert_record(
                    ts=ts,
                    rule=DRIFT_RULE,
                    host="*",
                    severity="info",
                    state="observation",
                    value=float("nan") if value is None else value,
                )
            )
            host = attrs.get("host", "")
            if host:
                host_value = attrs.get("host_max_feature_psi")
                alerts.append(
                    alert_record(
                        ts=ts,
                        rule=DRIFT_RULE,
                        host=host,
                        severity="info",
                        state="observation",
                        value=float("nan") if host_value is None else host_value,
                    )
                )
    return verdicts, alerts, spans


def normalize_metrics(snapshot: dict | None) -> dict:
    """A metrics snapshot reduced to its mergeable, hash-stable core.

    Cosmetic ``help`` strings are dropped (they never affect a roll-up)
    so the live registry snapshot and its JSON round trip through
    ``--metrics-out`` hash identically.
    """
    if not snapshot:
        return {"counters": {}, "gauges": {}, "histograms": {}}
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for name, data in snapshot.get("counters", {}).items():
        out["counters"][name] = {"value": float(data["value"])}
    for name, data in snapshot.get("gauges", {}).items():
        out["gauges"][name] = {"value": float(data["value"])}
    for name, data in snapshot.get("histograms", {}).items():
        out["histograms"][name] = {
            "buckets": [float(b) for b in data["buckets"]],
            "counts": [int(c) for c in data["counts"]],
            "sum": float(data["sum"]),
            "count": int(data["count"]),
        }
    return out


def segment_content_id(
    verdicts: list[dict], alerts: list[dict], spans: list[dict], metrics: dict
) -> str:
    """SHA-256 content address of one segment's normalized records."""
    payload = {
        "schema": ARCHIVE_SCHEMA_VERSION,
        "verdicts": [[v[f] for f in _VERDICT_FIELDS] for v in verdicts],
        "alerts": [[a[f] for f in _ALERT_FIELDS] for a in alerts],
        "spans": [[s[f] for f in _SPAN_FIELDS] for s in spans],
        "metrics": metrics,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Segment storage
# ---------------------------------------------------------------------------


class _Interner:
    """String → dense index table for one segment's columns."""

    def __init__(self) -> None:
        self.table: dict[str, int] = {}

    def __call__(self, value: str) -> int:
        index = self.table.get(value)
        if index is None:
            index = self.table[value] = len(self.table)
        return index

    @property
    def strings(self) -> list[str]:
        return list(self.table)


@dataclass(frozen=True)
class SegmentData:
    """One loaded segment: columnar arrays plus the interned string table.

    String-valued columns (host, app, rule, ...) hold indices into
    ``strings``; :meth:`resolve` maps an index column back to strings.
    """

    segment_id: str
    strings: tuple[str, ...]
    verdicts: dict[str, np.ndarray]
    alerts: dict[str, np.ndarray]
    spans: dict[str, np.ndarray]
    metrics: dict

    def resolve(self, ids: np.ndarray) -> np.ndarray:
        """Map an interned-index column back to its strings."""
        table = np.array(self.strings, dtype=object)
        if ids.size == 0:
            return np.zeros(0, dtype=object)
        return table[ids]

    @property
    def n_verdicts(self) -> int:
        return int(self.verdicts["ts"].size)

    @property
    def n_alerts(self) -> int:
        return int(self.alerts["ts"].size)

    @property
    def n_spans(self) -> int:
        return int(self.spans["ts"].size)

    def span_seconds(self, name: str) -> float:
        """Total recorded duration of spans called ``name`` (0.0 if none)."""
        if self.n_spans == 0:
            return 0.0
        names = self.resolve(self.spans["name"])
        return float(self.spans["dur"][names == name].sum())


def _atomic_write_bytes(path: Path, write) -> None:
    """Atomically materialize a file via ``write(handle)`` + ``os.replace``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def _build_segment_arrays(
    verdicts: list[dict], alerts: list[dict], spans: list[dict], metrics: dict
) -> dict[str, np.ndarray]:
    intern = _Interner()
    arrays: dict[str, np.ndarray] = {
        "schema": np.array([ARCHIVE_SCHEMA_VERSION], dtype=np.int64),
        "verdict_ts": np.array([v["ts"] for v in verdicts], dtype=np.float64),
        "verdict_source": np.array(
            [intern(v["source"]) for v in verdicts], dtype=np.uint32
        ),
        "verdict_host": np.array(
            [intern(v["host"]) for v in verdicts], dtype=np.uint32
        ),
        "verdict_app": np.array([intern(v["app"]) for v in verdicts], dtype=np.uint32),
        "verdict_execution": np.array(
            [v["execution"] for v in verdicts], dtype=np.int64
        ),
        "verdict_flag": np.array([v["is_malware"] for v in verdicts], dtype=np.uint8),
        "verdict_degraded": np.array(
            [v["degraded"] for v in verdicts], dtype=np.uint8
        ),
        "verdict_fraction": np.array(
            [v["malware_fraction"] for v in verdicts], dtype=np.float64
        ),
        "verdict_windows": np.array(
            [v["n_windows"] for v in verdicts], dtype=np.uint32
        ),
        "verdict_lost": np.array(
            [v["n_windows_lost"] for v in verdicts], dtype=np.uint32
        ),
        "verdict_latency": np.array([v["latency"] for v in verdicts], dtype=np.int64),
        "alert_ts": np.array([a["ts"] for a in alerts], dtype=np.float64),
        "alert_rule": np.array([intern(a["rule"]) for a in alerts], dtype=np.uint32),
        "alert_host": np.array([intern(a["host"]) for a in alerts], dtype=np.uint32),
        "alert_severity": np.array(
            [intern(a["severity"]) for a in alerts], dtype=np.uint32
        ),
        "alert_state": np.array([intern(a["state"]) for a in alerts], dtype=np.uint32),
        "alert_value": np.array([a["value"] for a in alerts], dtype=np.float64),
        "span_name": np.array([intern(s["name"]) for s in spans], dtype=np.uint32),
        "span_ts": np.array([s["ts"] for s in spans], dtype=np.float64),
        "span_dur": np.array([s["dur"] for s in spans], dtype=np.float64),
        "metrics_json": np.array([json.dumps(metrics, sort_keys=True)]),
        "strings": np.array(intern.strings if intern.strings else [""], dtype=str),
        "n_strings": np.array([len(intern.strings)], dtype=np.int64),
    }
    return arrays


def _segment_columns(prefix: str, data: np.lib.npyio.NpzFile) -> dict[str, np.ndarray]:
    return {
        key[len(prefix):]: data[key]
        for key in data.files
        if key.startswith(prefix)
    }


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one :meth:`Archive.ingest_records` call.

    ``ingested`` is False when the segment already existed — the
    idempotent-manifest contract — in which case the counts describe
    the existing segment.
    """

    segment_id: str
    ingested: bool
    n_verdicts: int
    n_alerts: int
    n_spans: int
    path: Path


class ArchiveSink:
    """Live verdict/alert buffer for the service's archive hook.

    :class:`~repro.serve.service.DetectionService` calls
    :meth:`observe_verdict` / :meth:`observe_alert` on its verdict path
    (they only append to lists under the caller's emission path, and the
    service already serializes verdict emission per execution), so a
    service run can be archived with :meth:`ingest_into` even when
    tracing is disabled.  Records use the same normalized schema as
    :func:`normalize_events`, so a run archived live and the same run
    re-ingested from its dumped trace produce identical verdict/alert
    columns.
    """

    def __init__(self, source: str = "serve") -> None:
        self.source = source
        self.verdicts: list[dict] = []
        self.alerts: list[dict] = []

    def observe_verdict(self, **fields) -> None:
        """Buffer one verdict row (fields of :func:`verdict_record`)."""
        self.verdicts.append(verdict_record(source=self.source, **fields))

    def observe_alert(self, **fields) -> None:
        """Buffer one alert row (fields of :func:`alert_record`)."""
        self.alerts.append(alert_record(**fields))

    def ingest_into(
        self,
        archive: "Archive",
        metrics: dict | None = None,
        run_meta: dict | None = None,
        run_id: str | None = None,
    ) -> IngestResult:
        """Write the buffered records as one segment of ``archive``."""
        return archive.ingest_records(
            sorted(self.verdicts, key=lambda v: (v["ts"], v["execution"])),
            sorted(self.alerts, key=lambda a: a["ts"]),
            [],
            metrics=metrics,
            run_meta=run_meta,
            run_id=run_id,
            source=self.source,
        )


class Archive:
    """Content-addressed columnar archive of fleet run history.

    Layout under ``root``::

        manifest.json                 # segment index (atomic rewrites)
        segments/<id[:2]>/<id>.npz    # one columnar segment per run

    Args:
        root: archive directory, created on first ingest.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ArchiveError(f"archive root {self.root} is not a directory")

    # -- manifest -------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        """Path of the manifest index file."""
        return self.root / "manifest.json"

    def manifest(self) -> dict:
        """The manifest object (``{"schema": .., "segments": [..]}``)."""
        try:
            text = self.manifest_path.read_text()
        except FileNotFoundError:
            return {"schema": ARCHIVE_SCHEMA_VERSION, "segments": []}
        try:
            manifest = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArchiveError(f"corrupt archive manifest {self.manifest_path}") from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("schema") != ARCHIVE_SCHEMA_VERSION
        ):
            raise ArchiveError(
                f"archive manifest {self.manifest_path} has unsupported schema "
                f"{manifest.get('schema') if isinstance(manifest, dict) else '?'}"
            )
        return manifest

    def segments(self) -> list[dict]:
        """Manifest entries, in ingestion order."""
        return list(self.manifest()["segments"])

    def entry(self, segment_id: str) -> dict:
        """The manifest entry for ``segment_id`` (prefix match allowed)."""
        matches = [
            e for e in self.segments() if e["segment_id"].startswith(segment_id)
        ]
        if not matches:
            raise ArchiveError(f"no archived segment matches {segment_id!r}")
        if len(matches) > 1:
            raise ArchiveError(f"segment id {segment_id!r} is ambiguous")
        return matches[0]

    def __len__(self) -> int:
        return len(self.manifest()["segments"])

    def segment_path(self, segment_id: str) -> Path:
        """On-disk location of one segment's ``.npz`` file."""
        return self.root / "segments" / segment_id[:2] / f"{segment_id}.npz"

    # -- ingest ---------------------------------------------------------
    def ingest_records(
        self,
        verdicts: list[dict],
        alerts: list[dict],
        spans: list[dict],
        metrics: dict | None = None,
        run_meta: dict | None = None,
        run_id: str | None = None,
        source: str = "trace",
    ) -> IngestResult:
        """Archive one run's normalized records as a segment.

        The segment ID is the SHA-256 of the normalized content, so
        ingesting the same run twice is a no-op: the second call finds
        the ID in the manifest and returns ``ingested=False`` without
        touching disk.  The segment file is written before the manifest
        entry; a crash between the two leaves an orphan that the next
        ingest of the same content atomically overwrites and indexes.
        """
        snapshot = normalize_metrics(metrics)
        segment_id = segment_content_id(verdicts, alerts, spans, snapshot)
        path = self.segment_path(segment_id)
        for existing in self.segments():
            if existing["segment_id"] == segment_id:
                return IngestResult(
                    segment_id=segment_id,
                    ingested=False,
                    n_verdicts=existing["n_verdicts"],
                    n_alerts=existing["n_alerts"],
                    n_spans=existing["n_spans"],
                    path=path,
                )
        arrays = _build_segment_arrays(verdicts, alerts, spans, snapshot)
        _atomic_write_bytes(path, lambda fh: np.savez_compressed(fh, **arrays))
        all_ts = (
            [v["ts"] for v in verdicts]
            + [a["ts"] for a in alerts]
            + [s["ts"] for s in spans]
        )
        entry = {
            "segment_id": segment_id,
            "file": str(path.relative_to(self.root)),
            "source": source,
            "run_id": run_id,
            "created_ts": time.time(),
            "n_verdicts": len(verdicts),
            "n_alerts": len(alerts),
            "n_spans": len(spans),
            "ts_min": min(all_ts) if all_ts else None,
            "ts_max": max(all_ts) if all_ts else None,
            "hosts": sorted({v["host"] for v in verdicts}),
            "run_meta": run_meta,
        }
        manifest = self.manifest()
        manifest["segments"].append(entry)
        text = json.dumps(manifest, indent=1).encode()
        _atomic_write_bytes(self.manifest_path, lambda fh: fh.write(text))
        return IngestResult(
            segment_id=segment_id,
            ingested=True,
            n_verdicts=len(verdicts),
            n_alerts=len(alerts),
            n_spans=len(spans),
            path=path,
        )

    def ingest_events(
        self,
        events: list[dict],
        metrics: dict | None = None,
        run_meta: dict | None = None,
        run_id: str | None = None,
        source: str = "trace",
    ) -> IngestResult:
        """Archive one run's raw trace events (plus a metrics snapshot)."""
        verdicts, alerts, spans = normalize_events(events)
        return self.ingest_records(
            verdicts, alerts, spans,
            metrics=metrics, run_meta=run_meta, run_id=run_id, source=source,
        )

    def ingest_trace(
        self,
        trace_path: str | Path,
        metrics_path: str | Path | None = None,
        run_meta: dict | None = None,
        run_id: str | None = None,
        source: str = "trace",
    ) -> IngestResult:
        """Rotate a ``--trace-out`` JSONL file (and optional
        ``--metrics-out`` snapshot) into the archive."""
        events = load_trace(trace_path)
        metrics = None
        if metrics_path is not None:
            metrics = json.loads(Path(metrics_path).read_text())
            if not isinstance(metrics, dict):
                raise ArchiveError(
                    f"metrics file {metrics_path} does not hold a snapshot"
                )
        return self.ingest_events(
            events, metrics=metrics, run_meta=run_meta, run_id=run_id, source=source
        )

    # -- load -----------------------------------------------------------
    def load_segment(self, entry: dict | str) -> SegmentData:
        """Load one segment's columns (by manifest entry or ID prefix)."""
        if isinstance(entry, str):
            entry = self.entry(entry)
        path = self.root / entry["file"]
        try:
            with np.load(path, allow_pickle=False) as data:
                schema = int(data["schema"][0])
                if schema != ARCHIVE_SCHEMA_VERSION:
                    raise ArchiveError(
                        f"segment {entry['segment_id']} has schema {schema}, "
                        f"expected {ARCHIVE_SCHEMA_VERSION}"
                    )
                n_strings = int(data["n_strings"][0])
                strings = tuple(str(s) for s in data["strings"][:n_strings])
                return SegmentData(
                    segment_id=entry["segment_id"],
                    strings=strings,
                    verdicts=_segment_columns("verdict_", data),
                    alerts=_segment_columns("alert_", data),
                    spans=_segment_columns("span_", data),
                    metrics=json.loads(str(data["metrics_json"][0])),
                )
        except OSError as exc:
            raise ArchiveError(
                f"cannot read archived segment {entry['segment_id']}: {exc}"
            ) from exc
        except (KeyError, ValueError) as exc:
            raise ArchiveError(
                f"corrupt archived segment {entry['segment_id']}: {exc}"
            ) from exc
