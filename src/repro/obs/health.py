"""Live health evaluation: sliding-window signals, alert rules, SLOs.

The paper's claim is about *run-time* detection, so the reproduction
needs a run-time answer to "is the detector healthy right now" — not a
post-mortem table.  This module layers three pieces on the telemetry the
pipeline already emits:

* :class:`SlidingWindowSignals` — derived signals over a configurable
  time window: detection rate, degraded-verdict ratio, retry rate,
  windows-lost fraction, and p50/p95 per-window classify latency.  The
  latency quantiles are exact in the same sense as
  :func:`~repro.obs.stats.histogram_quantile`: observations land in the
  same fixed buckets :class:`~repro.obs.metrics.Histogram` uses, bucket
  counts add and subtract exactly as window entries arrive and expire,
  so a windowed quantile equals the quantile of a histogram built from
  only the window's observations.
* :class:`AlertRule` / :class:`AlertState` — declarative threshold rules
  (comparator, ``for_s`` hold duration, severity, hysteresis via a
  distinct clear threshold) evaluated deterministically against a
  supplied clock.  Firing/cleared transitions are emitted as
  ``health.alert`` trace events, counted in the registry, and rendered
  to stderr when a stream is given.
* :class:`SLO` — objectives like "≥95% non-degraded verdicts" or
  "p95 classify < 10 ms" with burn-rate and remaining-error-budget
  reporting.

:class:`HealthEvaluator` ties them together and has two feeding paths
with one code path behind them: :meth:`~HealthEvaluator.ingest` consumes
``fleet.verdict`` / ``monitor.verdict`` trace events (from a file a
:class:`~repro.obs.stream.TraceFollower` tails), and the in-process hook
(``health=`` on :class:`~repro.core.runtime.RuntimeMonitor` and
:class:`~repro.core.fleet.FleetMonitor`) calls
:meth:`~HealthEvaluator.observe_verdict` directly, no file round-trip.
Either way the evaluator never touches verdict computation — verdicts
stay bit-identical with health evaluation enabled — and a monitor built
with ``health=None`` pays one attribute check, like the null tracer.

Determinism contract: evaluation time is whatever clock the caller
supplies — event timestamps during replay, an injected fake clock in
tests — and transitions record that time, so replaying the same trace
yields byte-identical transition history.
"""

from __future__ import annotations

import json
import math
import operator
import re
import threading
import time
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, ClassVar, TextIO

from repro.ioutil import atomic_write_text, to_jsonable
from repro.obs.metrics import FAST_LATENCY_BUCKETS, NULL_REGISTRY, Registry
from repro.obs.stats import histogram_quantile
from repro.obs.trace import NULL_TRACER, Tracer

#: Schema tag written into health reports (bump on incompatible change).
HEALTH_SCHEMA_VERSION = 1

#: Rule severities, least to most urgent.
SEVERITIES = ("info", "warning", "critical")

#: Signals every window exposes (alert rules may target any of these).
SIGNAL_NAMES = (
    "verdicts",
    "detection_rate",
    "degraded_ratio",
    "retry_rate",
    "windows_lost_fraction",
    "p50_classify_s",
    "p95_classify_s",
)

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}

_NAN = float("nan")


class HealthConfigError(ValueError):
    """Malformed alert rule or SLO specification."""


class SlidingWindowSignals:
    """Exact derived signals over a trailing time window.

    Verdict-level evidence (alarms, degradation, retries, lost windows)
    and classify-latency observations are kept in per-kind deques with
    running aggregates; entries older than ``window_s`` are evicted and
    their contribution subtracted, so every signal is exactly what a
    fresh accumulation over the surviving entries would produce.

    Args:
        window_s: trailing window length in seconds.
        buckets: classify-latency bucket bounds (must match the
            producing histogram's buckets for windowed quantiles to be
            exact; defaults to the monitor's
            :data:`~repro.obs.metrics.FAST_LATENCY_BUCKETS`).
    """

    def __init__(
        self, window_s: float = 60.0, buckets: tuple = FAST_LATENCY_BUCKETS
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.window_s = float(window_s)
        self.buckets = tuple(float(b) for b in buckets)
        self._verdicts: deque = deque()  # (ts, alarm, degraded, kept, lost, retries)
        self._classify: deque = deque()  # (ts, bucket_index, n, total_seconds)
        self._counts = [0] * (len(self.buckets) + 1)
        self._classify_n = 0
        self._classify_sum = 0.0
        self._n_alarms = 0
        self._n_degraded = 0
        self._n_kept = 0
        self._n_lost = 0
        self._n_retries = 0
        # Lifetime totals (never evicted) for the final report.
        self.total_verdicts = 0
        self.total_degraded = 0

    def _monotone(self, queue: deque, ts: float) -> float:
        # Eviction pops from the left while entries are expired, which
        # requires timestamps to be non-decreasing.  A straggler stamped
        # earlier than the deque tail (fleet threads finish out of
        # order) is clamped forward to the tail's time.
        return max(float(ts), queue[-1][0]) if queue else float(ts)

    def observe_verdict(
        self,
        ts: float,
        *,
        is_malware: bool,
        degraded: bool,
        n_windows: int,
        n_windows_lost: int = 0,
        retries: int = 0,
    ) -> None:
        entry = (
            self._monotone(self._verdicts, ts), bool(is_malware), bool(degraded),
            int(n_windows), int(n_windows_lost), int(retries),
        )
        self._verdicts.append(entry)
        self._n_alarms += entry[1]
        self._n_degraded += entry[2]
        self._n_kept += entry[3]
        self._n_lost += entry[4]
        self._n_retries += entry[5]
        self.total_verdicts += 1
        self.total_degraded += entry[2]

    def observe_classify(self, ts: float, seconds: float, n: int = 1) -> None:
        """Record ``n`` per-window classify observations of ``seconds``."""
        if n <= 0:
            return
        index = bisect_left(self.buckets, float(seconds))
        self._classify.append(
            (self._monotone(self._classify, ts), index, int(n), float(seconds) * n)
        )
        self._counts[index] += n
        self._classify_n += n
        self._classify_sum += float(seconds) * n

    def evict(self, now: float) -> None:
        """Drop entries that have aged out of the window ending at ``now``."""
        cutoff = now - self.window_s
        while self._verdicts and self._verdicts[0][0] <= cutoff:
            _, alarm, degraded, kept, lost, retries = self._verdicts.popleft()
            self._n_alarms -= alarm
            self._n_degraded -= degraded
            self._n_kept -= kept
            self._n_lost -= lost
            self._n_retries -= retries
        while self._classify and self._classify[0][0] <= cutoff:
            _, index, n, total = self._classify.popleft()
            self._counts[index] -= n
            self._classify_n -= n
            self._classify_sum -= total

    def values(self, now: float) -> dict:
        """Every signal at time ``now`` (NaN where there is no evidence)."""
        self.evict(now)
        n = len(self._verdicts)
        requested = self._n_kept + self._n_lost
        classify = {
            "count": self._classify_n,
            "buckets": self.buckets,
            "counts": self._counts,
        }
        return {
            "verdicts": float(n),
            "detection_rate": self._n_alarms / n if n else _NAN,
            "degraded_ratio": self._n_degraded / n if n else _NAN,
            "retry_rate": self._n_retries / n if n else _NAN,
            "windows_lost_fraction": (
                self._n_lost / requested if requested else _NAN
            ),
            "p50_classify_s": histogram_quantile(classify, 0.50),
            "p95_classify_s": histogram_quantile(classify, 0.95),
        }

    def classify_good_fraction(self, bound_s: float, now: float) -> float:
        """Fraction of windowed classify observations at or under ``bound_s``.

        Exact under the histogram's upper-bound semantics: an
        observation counts as good when its bucket bound is <=
        ``bound_s``, which matches :func:`histogram_quantile` so
        "p95 <= bound" and "good fraction >= 0.95" agree.
        """
        self.evict(now)
        if not self._classify_n:
            return _NAN
        good = 0
        for bound, count in zip(self.buckets, self._counts):
            if bound > bound_s:
                break
            good += count
        return good / self._classify_n

    def degraded_good_fraction(self, now: float) -> float:
        """Fraction of windowed verdicts that are *not* degraded."""
        self.evict(now)
        n = len(self._verdicts)
        return (n - self._n_degraded) / n if n else _NAN

    def windows_kept_fraction(self, now: float) -> float:
        """Fraction of requested sampling windows that survived."""
        self.evict(now)
        requested = self._n_kept + self._n_lost
        return self._n_kept / requested if requested else _NAN


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold rule over a window signal.

    Args:
        name: rule identifier (shown in transitions and reports).
        signal: one of :data:`SIGNAL_NAMES`.
        op: comparator applied as ``signal op threshold``.
        threshold: breach threshold.
        for_s: the breach must hold continuously this long before the
            rule fires (0 = fire on first breach).
        severity: ``info`` / ``warning`` / ``critical``.
        clear_threshold: hysteresis — once firing, the rule clears only
            when ``signal op clear_threshold`` is false.  Defaults to
            ``threshold`` (no hysteresis band).
    """

    name: str
    signal: str
    op: str
    threshold: float
    for_s: float = 0.0
    severity: str = "warning"
    clear_threshold: float | None = None

    #: Signals rules of this class may target.  Subclasses evaluating a
    #: different signal family (e.g. drift signals in
    #: :mod:`repro.obs.quality`) override this; the state machine and
    #: spec grammar are shared unchanged.
    signal_names: ClassVar[tuple] = SIGNAL_NAMES

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise HealthConfigError(
                f"rule {self.name!r}: unknown comparator {self.op!r} "
                f"(use one of {'/'.join(_OPS)})"
            )
        if self.signal not in type(self).signal_names:
            raise HealthConfigError(
                f"rule {self.name!r}: unknown signal {self.signal!r} "
                f"(use one of {', '.join(type(self).signal_names)})"
            )
        if self.severity not in SEVERITIES:
            raise HealthConfigError(
                f"rule {self.name!r}: unknown severity {self.severity!r} "
                f"(use one of {'/'.join(SEVERITIES)})"
            )
        if self.for_s < 0:
            raise HealthConfigError(f"rule {self.name!r}: for_s cannot be negative")
        if self.clear_threshold is not None:
            upward = self.op in (">", ">=")
            band_ok = (
                self.clear_threshold <= self.threshold
                if upward
                else self.clear_threshold >= self.threshold
            )
            if not band_ok:
                side = "below" if upward else "above"
                raise HealthConfigError(
                    f"rule {self.name!r}: clear_threshold must be {side} "
                    f"threshold for op {self.op!r} (hysteresis band)"
                )

    def breaches(self, value: float) -> bool:
        """Whether ``value`` violates the rule (NaN never breaches)."""
        if math.isnan(value):
            return False
        return _OPS[self.op](value, self.threshold)

    def clears(self, value: float) -> bool:
        """Whether a firing rule may return to ok (NaN keeps it firing)."""
        if math.isnan(value):
            return False
        clear_at = (
            self.threshold if self.clear_threshold is None else self.clear_threshold
        )
        return not _OPS[self.op](value, clear_at)

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "signal": self.signal,
            "op": self.op,
            "threshold": self.threshold,
            "for_s": self.for_s,
            "severity": self.severity,
        }
        if self.clear_threshold is not None:
            data["clear_threshold"] = self.clear_threshold
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "AlertRule":
        try:
            return cls(
                name=data.get("name") or f"{data['signal']}{data['op']}",
                signal=data["signal"],
                op=data["op"],
                threshold=float(data["threshold"]),
                for_s=float(data.get("for_s", 0.0)),
                severity=data.get("severity", "warning"),
                clear_threshold=(
                    float(data["clear_threshold"])
                    if data.get("clear_threshold") is not None
                    else None
                ),
            )
        except KeyError as exc:
            raise HealthConfigError(f"alert rule missing field {exc}") from exc


_SPEC_RE = re.compile(r"^\s*([a-z0-9_]+)\s*(>=|<=|>|<)\s*([0-9.eE+-]+)\s*$")


def parse_alert_spec(spec: str, rule_cls: type = AlertRule) -> AlertRule:
    """Parse an inline ``--alert`` rule specification.

    Format: ``SIGNAL OP THRESHOLD[:SEVERITY[:FOR_S[:CLEAR]]]``, e.g.
    ``degraded_ratio>=0.2:critical:5:0.1`` fires at 0.2 after 5 s of
    sustained breach and clears below 0.1.  ``rule_cls`` selects which
    :class:`AlertRule` family validates the signal name (the quality
    tracker parses the same grammar against its drift signals).
    """
    condition, *extras = spec.split(":")
    if len(extras) > 3:
        raise HealthConfigError(f"bad alert spec {spec!r}: too many ':' fields")
    match = _SPEC_RE.match(condition)
    if not match:
        raise HealthConfigError(
            f"bad alert spec {spec!r}; expected SIGNAL OP THRESHOLD like "
            "degraded_ratio>=0.2[:severity[:for_s[:clear_threshold]]]"
        )
    signal, op, raw_threshold = match.groups()
    try:
        threshold = float(raw_threshold)
        severity = extras[0] if len(extras) > 0 and extras[0] else "warning"
        for_s = float(extras[1]) if len(extras) > 1 and extras[1] else 0.0
        clear = float(extras[2]) if len(extras) > 2 and extras[2] else None
    except ValueError as exc:
        raise HealthConfigError(f"bad alert spec {spec!r}: {exc}") from exc
    return rule_cls(
        name=condition.replace(" ", ""),
        signal=signal,
        op=op,
        threshold=threshold,
        for_s=for_s,
        severity=severity,
        clear_threshold=clear,
    )


def load_alert_rules(path: str | Path) -> list[AlertRule]:
    """Read alert rules from a JSON file.

    Accepts either a bare list of rule objects or ``{"rules": [...]}``;
    see :meth:`AlertRule.from_dict` for the per-rule schema.
    """
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise HealthConfigError(f"alert rules {path}: invalid JSON ({exc})") from exc
    rules = data.get("rules") if isinstance(data, dict) else data
    if not isinstance(rules, list):
        raise HealthConfigError(
            f"alert rules {path}: expected a list of rules or {{'rules': [...]}}"
        )
    return [AlertRule.from_dict(rule) for rule in rules]


class AlertState:
    """Runtime state machine for one :class:`AlertRule`.

    States: ``ok`` → ``pending`` (breaching, waiting out ``for_s``) →
    ``firing`` → back to ``ok`` when the clear condition holds.  Every
    firing/cleared transition is appended to :attr:`transitions` with
    the evaluation timestamp, so a replay under the same clock produces
    the same history.
    """

    def __init__(self, rule: AlertRule) -> None:
        self.rule = rule
        self.state = "ok"
        self.pending_since: float | None = None
        self.fired_count = 0
        self.last_value = _NAN
        self.transitions: list[dict] = []

    def update(self, value: float, now: float) -> dict | None:
        """Advance the state machine; returns the transition, if any."""
        self.last_value = value
        if self.state == "firing":
            if self.rule.clears(value):
                self.state = "ok"
                self.pending_since = None
                transition = {
                    "rule": self.rule.name, "state": "cleared",
                    "ts": now, "value": value, "severity": self.rule.severity,
                }
                self.transitions.append(transition)
                return transition
            return None
        if self.rule.breaches(value):
            if self.pending_since is None:
                self.pending_since = now
            if now - self.pending_since >= self.rule.for_s:
                self.state = "firing"
                self.fired_count += 1
                transition = {
                    "rule": self.rule.name, "state": "firing",
                    "ts": now, "value": value, "severity": self.rule.severity,
                    "breached_since": self.pending_since,
                }
                self.transitions.append(transition)
                return transition
            self.state = "pending"
        else:
            self.state = "ok"
            self.pending_since = None
        return None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.to_dict(),
            "state": self.state,
            "fired_count": self.fired_count,
            "last_value": self.last_value,
            "transitions": list(self.transitions),
        }


@dataclass(frozen=True)
class SLO:
    """A service-level objective with error-budget accounting.

    ``good_fraction`` of the window's units (verdicts or classify
    observations, per :attr:`kind`) must be at least :attr:`objective`;
    the error budget is ``1 - objective`` and the burn rate is the bad
    fraction divided by that budget (1.0 = exactly consuming budget).

    Args:
        name: the spec string it was parsed from (used in reports).
        kind: ``nondegraded`` (non-degraded verdict fraction),
            ``windows_kept`` (surviving sampling-window fraction), or
            ``classify_latency`` (classify observations at or under
            ``bound_s``).
        objective: required good fraction in (0, 1).
        bound_s: latency bound for ``classify_latency`` objectives.
    """

    name: str
    kind: str
    objective: float
    bound_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("nondegraded", "windows_kept", "classify_latency"):
            raise HealthConfigError(f"SLO {self.name!r}: unknown kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise HealthConfigError(
                f"SLO {self.name!r}: objective must be in (0, 1), "
                f"got {self.objective}"
            )
        if self.kind == "classify_latency" and (
            self.bound_s is None or self.bound_s <= 0
        ):
            raise HealthConfigError(
                f"SLO {self.name!r}: classify_latency needs a positive bound"
            )

    def good_fraction(self, window: SlidingWindowSignals, now: float) -> float:
        if self.kind == "nondegraded":
            return window.degraded_good_fraction(now)
        if self.kind == "windows_kept":
            return window.windows_kept_fraction(now)
        return window.classify_good_fraction(self.bound_s, now)

    def status(self, window: SlidingWindowSignals, now: float) -> dict:
        """Compliance, burn rate, and remaining error budget at ``now``."""
        good = self.good_fraction(window, now)
        budget = 1.0 - self.objective
        if math.isnan(good):
            burn = _NAN
            remaining = _NAN
            ok = None
        else:
            bad = 1.0 - good
            burn = bad / budget
            remaining = 1.0 - burn
            ok = good >= self.objective
        return {
            "slo": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "bound_s": self.bound_s,
            "good_fraction": good,
            "burn_rate": burn,
            "budget_remaining": remaining,
            "ok": ok,
        }


_SLO_QUANTILE_RE = re.compile(r"^\s*p(\d{1,2})_classify_s\s*<=?\s*([0-9.eE+-]+)\s*$")
_SLO_GOOD_RE = re.compile(r"^\s*(nondegraded|windows_kept)\s*>=?\s*([0-9.eE+-]+)\s*$")
_SLO_BAD_RE = re.compile(
    r"^\s*(degraded_ratio|windows_lost_fraction)\s*<=?\s*([0-9.eE+-]+)\s*$"
)

_BAD_TO_KIND = {"degraded_ratio": "nondegraded", "windows_lost_fraction": "windows_kept"}


def parse_slo(spec: str) -> SLO:
    """Parse an ``--slo`` objective specification.

    Accepted forms::

        nondegraded>=0.95            # ≥95% of verdicts non-degraded
        degraded_ratio<=0.05         # same objective, budget spelling
        windows_kept>=0.9            # ≥90% of sampling windows survive
        windows_lost_fraction<=0.1   # same objective, budget spelling
        p95_classify_s<=0.01         # 95% of windows classify in <=10ms
    """
    match = _SLO_QUANTILE_RE.match(spec)
    if match:
        quantile, bound = match.groups()
        return SLO(
            name=spec.strip(), kind="classify_latency",
            objective=int(quantile) / 100.0, bound_s=float(bound),
        )
    match = _SLO_GOOD_RE.match(spec)
    if match:
        kind, objective = match.groups()
        return SLO(name=spec.strip(), kind=kind, objective=float(objective))
    match = _SLO_BAD_RE.match(spec)
    if match:
        signal, budget = match.groups()
        return SLO(
            name=spec.strip(), kind=_BAD_TO_KIND[signal],
            objective=1.0 - float(budget),
        )
    raise HealthConfigError(
        f"bad SLO spec {spec!r}; expected one of nondegraded>=F, "
        "degraded_ratio<=F, windows_kept>=F, windows_lost_fraction<=F, "
        "pNN_classify_s<=SECONDS"
    )


#: Trace event names the evaluator recognizes as verdict streams.
_VERDICT_EVENTS = ("fleet.verdict", "monitor.verdict", "serve.verdict")


class HealthEvaluator:
    """Evaluates alert rules and SLOs over a live verdict stream.

    One evaluator serves both feeding paths: the in-process monitor hook
    calls :meth:`observe_verdict` / :meth:`observe_classify` directly,
    and a file watcher replays trace events through :meth:`ingest` and
    metrics-snapshot deltas through :meth:`absorb_metrics`.  All entry
    points are thread-safe (the fleet observes from worker threads).

    Args:
        rules: alert rules to evaluate.
        slos: objectives to track.
        window_s: sliding-window length for every derived signal.
        tracer: receives one ``health.alert`` event per firing/cleared
            transition.
        metrics: counts verdicts observed, evaluations, and transitions
            (``health_alerts_fired_total`` / ``health_alerts_cleared_total``).
        stream: optional text stream; transitions render there as
            one-line notices (the CLI passes stderr).
        clock: time source for entry points not given an explicit
            timestamp — inject a fake for replayable tests.
    """

    def __init__(
        self,
        rules: tuple | list = (),
        slos: tuple | list = (),
        window_s: float = 60.0,
        tracer: Tracer | None = None,
        metrics: Registry | None = None,
        stream: TextIO | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.window = SlidingWindowSignals(window_s)
        self.states = [AlertState(rule) for rule in rules]
        self.slos = list(slos)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.stream = stream
        self.clock = clock
        self.last_values: dict = {}
        self._now: float | None = None
        self._lock = threading.RLock()
        self._c_verdicts = self.metrics.counter(
            "health_verdicts_observed_total", "verdicts fed to the health evaluator"
        )
        self._c_evals = self.metrics.counter(
            "health_evaluations_total", "alert-rule evaluation passes"
        )
        self._c_fired = self.metrics.counter(
            "health_alerts_fired_total", "alert rules entering the firing state"
        )
        self._c_cleared = self.metrics.counter(
            "health_alerts_cleared_total", "alert rules returning to ok"
        )

    # -- feeding paths -------------------------------------------------
    def observe_verdict(
        self,
        app_name: str = "",
        *,
        is_malware: bool,
        degraded: bool = False,
        n_windows: int,
        n_windows_lost: int = 0,
        retries: int = 0,
        ts: float | None = None,
    ) -> None:
        """The in-process hook: one verdict straight from a monitor."""
        with self._lock:
            now = self.clock() if ts is None else float(ts)
            self.window.observe_verdict(
                now,
                is_malware=is_malware,
                degraded=degraded,
                n_windows=n_windows,
                n_windows_lost=n_windows_lost,
                retries=retries,
            )
            self._c_verdicts.inc()
            self._evaluate(now)

    def observe_classify(
        self, seconds: float, n: int = 1, ts: float | None = None
    ) -> None:
        """Record per-window classify latency (no rule evaluation)."""
        with self._lock:
            now = self.clock() if ts is None else float(ts)
            self.window.observe_classify(now, seconds, n)

    def ingest(self, event: dict) -> bool:
        """Consume one trace event; returns True when it fed a signal.

        Recognizes the verdict events the monitors emit; anything else
        (spans, matrix cells) is ignored so a whole trace file can be
        streamed through without filtering.
        """
        if event.get("type") != "event" or event.get("name") not in _VERDICT_EVENTS:
            return False
        attrs = event.get("attrs", {})
        self.observe_verdict(
            attrs.get("app", ""),
            is_malware=bool(attrs.get("is_malware", False)),
            degraded=bool(attrs.get("degraded", False)),
            n_windows=int(attrs.get("n_windows", 0)),
            n_windows_lost=int(attrs.get("n_windows_lost", 0)),
            retries=max(int(attrs.get("attempts", 1)) - 1, 0),
            ts=float(event.get("ts", 0.0)),
        )
        return True

    def absorb_metrics(self, snapshot: dict, ts: float | None = None) -> None:
        """Fold a metrics-snapshot *delta* into the classify window.

        Every ``*_classify_seconds`` histogram increment is replayed as
        observations at its bucket's upper bound — the same upper-bound
        convention :func:`histogram_quantile` uses, so windowed
        quantiles from a followed metrics file agree with the producing
        histogram's own quantiles.  Pass deltas
        (:meth:`~repro.obs.stream.MetricsFollower.poll`), not cumulative
        snapshots, or observations double-count.
        """
        with self._lock:
            now = self.clock() if ts is None else float(ts)
            for name, data in snapshot.get("histograms", {}).items():
                if not name.endswith("_classify_seconds"):
                    continue
                bounds = list(data["buckets"]) + [float("inf")]
                for bound, count in zip(bounds, data["counts"]):
                    if count:
                        self.window.observe_classify(now, bound, int(count))

    # -- evaluation ----------------------------------------------------
    def tick(self, now: float | None = None) -> dict:
        """Evaluate all rules at ``now`` (clock time when omitted) and
        return the current signal values."""
        with self._lock:
            self._evaluate(self.clock() if now is None else float(now))
            return dict(self.last_values)

    def _evaluate(self, now: float) -> None:
        # Time only moves forward: a late-arriving event (fleet threads
        # finish out of order) evaluates at the latest time seen, so the
        # window never slides backwards and replays stay deterministic.
        self._now = now if self._now is None else max(self._now, now)
        values = self.window.values(self._now)
        self.last_values = values
        self._c_evals.inc()
        for state in self.states:
            value = values.get(state.rule.signal, _NAN)
            transition = state.update(value, self._now)
            if transition is None:
                continue
            if transition["state"] == "firing":
                self._c_fired.inc()
            else:
                self._c_cleared.inc()
            self.tracer.event("health.alert", **transition)
            if self.stream is not None:
                rule = state.rule
                print(
                    f"[health] {transition['state'].upper():7s} "
                    f"{rule.severity:8s} {rule.name}: "
                    f"{rule.signal} {rule.op} {rule.threshold:g} "
                    f"(value {transition['value']:.4g} at t={transition['ts']:.3f})",
                    file=self.stream,
                )

    # -- results -------------------------------------------------------
    @property
    def firing(self) -> list[AlertState]:
        """Alert states currently in the firing state."""
        return [state for state in self.states if state.state == "firing"]

    def critical_fired(self) -> bool:
        """Whether any critical rule has ever fired (the CI exit gate)."""
        return any(
            state.rule.severity == "critical" and state.fired_count
            for state in self.states
        )

    def slo_statuses(self, now: float | None = None) -> list[dict]:
        with self._lock:
            at = self._now if now is None else float(now)
            if at is None:
                at = self.clock()
            return [slo.status(self.window, at) for slo in self.slos]

    def report(self) -> dict:
        """JSON-ready final health report (``--health-out``)."""
        with self._lock:
            now = self._now if self._now is not None else self.clock()
            return {
                "schema": HEALTH_SCHEMA_VERSION,
                "window_s": self.window.window_s,
                "evaluated_at": now,
                "signals": self.window.values(now),
                "totals": {
                    "verdicts": self.window.total_verdicts,
                    "degraded": self.window.total_degraded,
                },
                "alerts": [state.to_dict() for state in self.states],
                "slos": [slo.status(self.window, now) for slo in self.slos],
                "critical_fired": self.critical_fired(),
            }

    def dump(self, path: str | Path) -> None:
        """Atomically write the final health report to ``path`` as JSON.

        The payload is coerced to native Python types first: numpy
        scalars leaking into ``json.dumps(..., default=str)`` used to be
        silently stringified, corrupting downstream consumers' types.
        """
        atomic_write_text(path, json.dumps(to_jsonable(self.report()), indent=1))


def _fmt_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value == float("inf"):
            return "+Inf"
        if float(value).is_integer() and abs(value) < 1e6:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def health_table(report: dict) -> str:
    """Render a health report as the ``watch`` terminal table."""
    lines = [
        f"Health — window {report['window_s']:g}s, "
        f"{report['totals']['verdicts']} verdicts total "
        f"({report['totals']['degraded']} degraded)"
    ]
    lines.append("signals:")
    for name in SIGNAL_NAMES:
        value = report["signals"].get(name, _NAN)
        shown = (
            _fmt_value(value * 1e3) + " ms"
            if name.endswith("_s") and isinstance(value, float) and value == value
            else _fmt_value(value)
        )
        lines.append(f"  {name:26s} {shown:>12s}")
    if report["alerts"]:
        lines.append("alerts:")
        lines.append(
            f"  {'rule':30s} {'severity':8s} {'state':7s} "
            f"{'value':>10s} {'threshold':>10s} {'fired':>5s}"
        )
        for alert in report["alerts"]:
            rule = alert["rule"]
            threshold = f"{rule['op']}{rule['threshold']:g}"
            lines.append(
                f"  {rule['name']:30s} {rule['severity']:8s} {alert['state']:7s} "
                f"{_fmt_value(alert['last_value']):>10s} {threshold:>10s} "
                f"{alert['fired_count']:>5d}"
            )
    if report["slos"]:
        lines.append("SLOs:")
        lines.append(
            f"  {'objective':30s} {'good':>8s} {'target':>8s} "
            f"{'burn':>7s} {'budget left':>12s} {'ok':>4s}"
        )
        for slo in report["slos"]:
            ok = {True: "yes", False: "NO", None: "-"}[slo["ok"]]
            lines.append(
                f"  {slo['slo']:30s} {_fmt_value(slo['good_fraction']):>8s} "
                f"{slo['objective']:>8.2f} {_fmt_value(slo['burn_rate']):>7s} "
                f"{_fmt_value(slo['budget_remaining']):>12s} {ok:>4s}"
            )
    return "\n".join(lines)
