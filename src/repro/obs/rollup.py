"""Cross-run roll-up queries and report rendering over the fleet archive.

Consumes the columnar segments :mod:`repro.obs.archive` writes and
answers the questions a fleet is operated by: how the detection rate and
degraded-verdict rate trend per host over time, how often each alert
rule fired, and what the merged classify-latency percentiles were across
every archived run.  Histogram percentiles reuse the exact fixed-bucket
merge semantics of :func:`repro.obs.metrics.merge_snapshots` and
:func:`repro.obs.stats.histogram_quantile`, so a roll-up over N archived
runs reports the same quantiles as merging those runs' raw
``--metrics-out`` snapshots directly.

``repro-hmd report`` renders :func:`fleet_report` (human tables) or
:func:`fleet_report_data` (``--json`` machine output, usable as a CI
gate).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.obs.archive import DRIFT_RULE, Archive, SegmentData
from repro.obs.metrics import merge_snapshots
from repro.obs.stats import histogram_quantile

#: Default trend bucket: one day of wall time.
DAY_SECONDS = 86_400.0

#: Quantiles the fleet report renders for every latency histogram.
REPORT_QUANTILES = (0.50, 0.95, 0.99)


@dataclass(frozen=True)
class VerdictFrame:
    """Concatenated verdict columns across selected segments.

    ``host``/``app``/``source`` are resolved to string arrays (dtype
    object), everything else keeps its columnar numeric dtype.
    """

    ts: np.ndarray
    host: np.ndarray
    app: np.ndarray
    source: np.ndarray
    execution: np.ndarray
    flag: np.ndarray
    degraded: np.ndarray
    fraction: np.ndarray
    n_windows: np.ndarray
    n_lost: np.ndarray
    latency: np.ndarray

    def __len__(self) -> int:
        return int(self.ts.size)


@dataclass(frozen=True)
class AlertFrame:
    """Concatenated alert columns across selected segments."""

    ts: np.ndarray
    rule: np.ndarray
    host: np.ndarray
    severity: np.ndarray
    state: np.ndarray
    value: np.ndarray

    def __len__(self) -> int:
        return int(self.ts.size)


def _empty_str(n: int = 0) -> np.ndarray:
    return np.zeros(n, dtype=object)


def _segment_verdicts(segment: SegmentData) -> dict[str, np.ndarray]:
    v = segment.verdicts
    return {
        "ts": v["ts"],
        "host": segment.resolve(v["host"]),
        "app": segment.resolve(v["app"]),
        "source": segment.resolve(v["source"]),
        "execution": v["execution"],
        "flag": v["flag"],
        "degraded": v["degraded"],
        "fraction": v["fraction"],
        "n_windows": v["windows"],
        "n_lost": v["lost"],
        "latency": v["latency"],
    }


def _segment_alerts(segment: SegmentData) -> dict[str, np.ndarray]:
    a = segment.alerts
    return {
        "ts": a["ts"],
        "rule": segment.resolve(a["rule"]),
        "host": segment.resolve(a["host"]),
        "severity": segment.resolve(a["severity"]),
        "state": segment.resolve(a["state"]),
        "value": a["value"],
    }


def select_segments(
    archive: Archive,
    sources: tuple[str, ...] | None = None,
    since: float | None = None,
    until: float | None = None,
) -> list[dict]:
    """Manifest entries overlapping the filter, in ingestion order.

    ``since``/``until`` filter on the segment's recorded event time
    range (entries without timestamps are kept — an empty segment can
    never contribute rows anyway).
    """
    selected = []
    for entry in archive.segments():
        if sources is not None and entry.get("source") not in sources:
            continue
        ts_min, ts_max = entry.get("ts_min"), entry.get("ts_max")
        if since is not None and ts_max is not None and ts_max < since:
            continue
        if until is not None and ts_min is not None and ts_min > until:
            continue
        selected.append(entry)
    return selected


def load_frames(
    archive: Archive,
    hosts: tuple[str, ...] | None = None,
    sources: tuple[str, ...] | None = None,
    since: float | None = None,
    until: float | None = None,
) -> tuple[VerdictFrame, AlertFrame]:
    """Concatenate selected segments into verdict and alert frames.

    Row-level filters (``hosts``, ``since``/``until``) apply after the
    segment-level selection, so a segment spanning the boundary
    contributes only its in-range rows.
    """
    v_cols: dict[str, list[np.ndarray]] = {}
    a_cols: dict[str, list[np.ndarray]] = {}
    for entry in select_segments(archive, sources=sources, since=since, until=until):
        segment = archive.load_segment(entry)
        v = _segment_verdicts(segment)
        keep = np.ones(v["ts"].size, dtype=bool)
        if hosts is not None:
            keep &= np.isin(v["host"].astype(str), hosts)
        if since is not None:
            keep &= v["ts"] >= since
        if until is not None:
            keep &= v["ts"] <= until
        for key, col in v.items():
            v_cols.setdefault(key, []).append(col[keep])
        a = _segment_alerts(segment)
        a_keep = np.ones(a["ts"].size, dtype=bool)
        if hosts is not None:
            a_keep &= np.isin(a["host"].astype(str), hosts + ("*",))
        if since is not None:
            a_keep &= a["ts"] >= since
        if until is not None:
            a_keep &= a["ts"] <= until
        for key, col in a.items():
            a_cols.setdefault(key, []).append(col[a_keep])

    def _cat(cols: dict, key: str, str_col: bool) -> np.ndarray:
        parts = cols.get(key, [])
        if not parts:
            return _empty_str() if str_col else np.zeros(0)
        return np.concatenate([np.asarray(p, dtype=object) for p in parts]) \
            if str_col else np.concatenate(parts)

    verdicts = VerdictFrame(
        ts=_cat(v_cols, "ts", False),
        host=_cat(v_cols, "host", True),
        app=_cat(v_cols, "app", True),
        source=_cat(v_cols, "source", True),
        execution=_cat(v_cols, "execution", False),
        flag=_cat(v_cols, "flag", False),
        degraded=_cat(v_cols, "degraded", False),
        fraction=_cat(v_cols, "fraction", False),
        n_windows=_cat(v_cols, "n_windows", False),
        n_lost=_cat(v_cols, "n_lost", False),
        latency=_cat(v_cols, "latency", False),
    )
    alerts = AlertFrame(
        ts=_cat(a_cols, "ts", False),
        rule=_cat(a_cols, "rule", True),
        host=_cat(a_cols, "host", True),
        severity=_cat(a_cols, "severity", True),
        state=_cat(a_cols, "state", True),
        value=_cat(a_cols, "value", False),
    )
    return verdicts, alerts


# ---------------------------------------------------------------------------
# Roll-up queries
# ---------------------------------------------------------------------------


def detection_rate_trend(
    frame: VerdictFrame, bucket_s: float = DAY_SECONDS
) -> list[dict]:
    """Per-host, per-time-bucket detection and degraded-verdict rates.

    Rows are sorted by (host, bucket start) and report the verdict
    count, flagged fraction, degraded fraction, and windows observed /
    lost within each bucket — the longitudinal trend a fleet operator
    watches for drift.
    """
    if bucket_s <= 0:
        raise ValueError(f"bucket_s must be positive, got {bucket_s}")
    if len(frame) == 0:
        return []
    buckets = np.floor(frame.ts / bucket_s).astype(np.int64)
    rows = []
    hosts = frame.host.astype(str)
    for host in sorted(set(hosts)):
        host_mask = hosts == host
        for bucket in sorted(set(buckets[host_mask])):
            mask = host_mask & (buckets == bucket)
            n = int(mask.sum())
            rows.append(
                {
                    "host": str(host),
                    "bucket_start": float(bucket * bucket_s),
                    "verdicts": n,
                    "detection_rate": float(frame.flag[mask].mean()),
                    "degraded_rate": float(frame.degraded[mask].mean()),
                    "windows": int(frame.n_windows[mask].sum()),
                    "windows_lost": int(frame.n_lost[mask].sum()),
                }
            )
    return rows


def drift_trend(frame: AlertFrame, bucket_s: float = DAY_SECONDS) -> list[dict]:
    """Per-host, per-time-bucket model-drift trend from archived runs.

    Aggregates the ``quality.drift`` observations
    (:data:`repro.obs.archive.DRIFT_RULE` rows, state ``observation``)
    that :class:`repro.obs.quality.QualityTracker` emits: each row's
    value is the max per-feature PSI at that evaluation.  Rows are
    sorted by (host, bucket start) and report the observation count and
    the mean / max PSI over the bucket's finite observations — warm-up
    evaluations below the tracker's evidence floor carry NaN values and
    count toward ``observations`` but not the PSI aggregates (a bucket
    with no finite value reports NaN for both).
    """
    if bucket_s <= 0:
        raise ValueError(f"bucket_s must be positive, got {bucket_s}")
    if len(frame) == 0:
        return []
    rules = frame.rule.astype(str)
    states = frame.state.astype(str)
    mask = (rules == DRIFT_RULE) & (states == "observation")
    if not mask.any():
        return []
    ts = frame.ts[mask]
    hosts = frame.host[mask].astype(str)
    values = np.asarray(frame.value[mask], dtype=float)
    buckets = np.floor(ts / bucket_s).astype(np.int64)
    rows = []
    for host in sorted(set(hosts)):
        host_mask = hosts == host
        for bucket in sorted(set(buckets[host_mask])):
            sel = host_mask & (buckets == bucket)
            vals = values[sel]
            finite = vals[np.isfinite(vals)]
            rows.append(
                {
                    "host": str(host),
                    "bucket_start": float(bucket * bucket_s),
                    "observations": int(sel.sum()),
                    "mean_psi": float(finite.mean()) if finite.size else float("nan"),
                    "max_psi": float(finite.max()) if finite.size else float("nan"),
                }
            )
    return rows


def alert_frequency(frame: AlertFrame) -> list[dict]:
    """Alert counts grouped by rule: how often each rule fired/cleared.

    Sorted by fired count descending then rule name, so the report leads
    with the noisiest rule.
    """
    if len(frame) == 0:
        return []
    rules = frame.rule.astype(str)
    states = frame.state.astype(str)
    severities = frame.severity.astype(str)
    rows = []
    for rule in sorted(set(rules)):
        mask = rules == rule
        fired = int(((states == "firing") & mask).sum())
        cleared = int(((states == "cleared") & mask).sum())
        severity = sorted(set(severities[mask]))
        rows.append(
            {
                "rule": str(rule),
                "severity": "/".join(str(s) for s in severity),
                "fired": fired,
                "cleared": cleared,
                "hosts": sorted(str(h) for h in set(frame.host[mask].astype(str))),
            }
        )
    return sorted(rows, key=lambda r: (-r["fired"], r["rule"]))


def merged_metrics(
    archive: Archive,
    sources: tuple[str, ...] | None = None,
    since: float | None = None,
    until: float | None = None,
) -> dict:
    """One metrics snapshot exactly merging every selected segment's.

    Counters and histogram buckets add across runs; gauges take the last
    ingested segment's value — :func:`repro.obs.metrics.merge_snapshots`
    semantics, so archive roll-ups agree with merging the raw per-run
    snapshot files.
    """
    snapshots = [
        archive.load_segment(entry).metrics
        for entry in select_segments(archive, sources=sources, since=since, until=until)
    ]
    return merge_snapshots(snapshots)


def latency_quantiles(
    snapshot: dict,
    quantiles: tuple[float, ...] = REPORT_QUANTILES,
    suffix: str = "_seconds",
) -> dict[str, dict]:
    """Exact-bucket quantiles for every latency histogram in a snapshot.

    Returns ``{name: {"count": .., "mean": .., "p50": .., ...}}`` for
    histograms whose name ends with ``suffix`` (all of the system's
    latency histograms follow the Prometheus ``_seconds`` convention).
    """
    out: dict[str, dict] = {}
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        if not name.endswith(suffix):
            continue
        count = int(data["count"])
        row = {
            "count": count,
            "mean": float(data["sum"]) / count if count else 0.0,
        }
        for q in quantiles:
            row[f"p{int(round(q * 100))}"] = histogram_quantile(data, q)
        out[name] = row
    return out


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------


def fleet_report_data(
    archive: Archive,
    hosts: tuple[str, ...] | None = None,
    sources: tuple[str, ...] | None = None,
    since: float | None = None,
    until: float | None = None,
    bucket_s: float = DAY_SECONDS,
) -> dict:
    """The machine-readable fleet report (the ``report --json`` payload)."""
    verdicts, alerts = load_frames(
        archive, hosts=hosts, sources=sources, since=since, until=until
    )
    snapshot = merged_metrics(archive, sources=sources, since=since, until=until)
    entries = select_segments(archive, sources=sources, since=since, until=until)
    return {
        "schema": 1,
        "segments": len(entries),
        "verdicts": len(verdicts),
        "alerts": len(alerts),
        "hosts": sorted(str(h) for h in set(verdicts.host.astype(str))),
        "detections": int(verdicts.flag.sum()) if len(verdicts) else 0,
        "degraded": int(verdicts.degraded.sum()) if len(verdicts) else 0,
        "windows": int(verdicts.n_windows.sum()) if len(verdicts) else 0,
        "windows_lost": int(verdicts.n_lost.sum()) if len(verdicts) else 0,
        "bucket_s": bucket_s,
        "detection_rate_trend": detection_rate_trend(verdicts, bucket_s=bucket_s),
        "drift_trend": drift_trend(alerts, bucket_s=bucket_s),
        "alert_frequency": alert_frequency(alerts),
        "latency_quantiles": latency_quantiles(snapshot),
    }


def _fmt_bucket(ts: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M", time.gmtime(ts))


def _fmt_psi(value: float) -> str:
    if value != value:  # NaN: no finite observations in bucket
        return "-"
    return f"{value:.4f}"


def _fmt_q(seconds: float) -> str:
    if seconds != seconds:  # NaN: empty histogram
        return "-"
    if seconds == float("inf"):
        return "+Inf"
    return f"{seconds * 1e3:.3f}"


def fleet_report(
    archive: Archive,
    hosts: tuple[str, ...] | None = None,
    sources: tuple[str, ...] | None = None,
    since: float | None = None,
    until: float | None = None,
    bucket_s: float = DAY_SECONDS,
) -> str:
    """Human-readable fleet history report across archived runs."""
    data = fleet_report_data(
        archive, hosts=hosts, sources=sources, since=since, until=until,
        bucket_s=bucket_s,
    )
    lines = [
        "Fleet archive report",
        f"segments: {data['segments']}  verdicts: {data['verdicts']}  "
        f"alerts: {data['alerts']}  hosts: {len(data['hosts'])}",
        f"detections: {data['detections']}  degraded: {data['degraded']}  "
        f"windows: {data['windows']} ({data['windows_lost']} lost)",
    ]
    trend = data["detection_rate_trend"]
    if trend:
        lines.append("")
        lines.append(
            f"Detection-rate trend (per host, {data['bucket_s']:.0f} s buckets)"
        )
        lines.append(
            f"{'host':24s} {'bucket (UTC)':>16s} {'verdicts':>8s} "
            f"{'detect':>7s} {'degraded':>8s} {'windows':>8s} {'lost':>5s}"
        )
        for row in trend:
            lines.append(
                f"{row['host']:24s} {_fmt_bucket(row['bucket_start']):>16s} "
                f"{row['verdicts']:>8d} {row['detection_rate']:>6.0%} "
                f"{row['degraded_rate']:>7.0%} {row['windows']:>8d} "
                f"{row['windows_lost']:>5d}"
            )
    drift = data["drift_trend"]
    if drift:
        lines.append("")
        lines.append(
            f"Model-drift trend (max feature PSI, {data['bucket_s']:.0f} s buckets)"
        )
        lines.append(
            f"{'host':24s} {'bucket (UTC)':>16s} {'obs':>6s} "
            f"{'mean PSI':>9s} {'max PSI':>9s}"
        )
        for row in drift:
            lines.append(
                f"{row['host']:24s} {_fmt_bucket(row['bucket_start']):>16s} "
                f"{row['observations']:>6d} {_fmt_psi(row['mean_psi']):>9s} "
                f"{_fmt_psi(row['max_psi']):>9s}"
            )
    freq = data["alert_frequency"]
    if freq:
        lines.append("")
        lines.append("Alert frequency (by rule)")
        lines.append(f"{'rule':32s} {'severity':>10s} {'fired':>6s} {'cleared':>8s}")
        for row in freq:
            lines.append(
                f"{row['rule']:32s} {row['severity']:>10s} "
                f"{row['fired']:>6d} {row['cleared']:>8d}"
            )
    quantiles = data["latency_quantiles"]
    if quantiles:
        lines.append("")
        lines.append("Latency percentiles (exact bucket merge across segments)")
        lines.append(
            f"{'histogram':38s} {'count':>8s} {'mean ms':>9s} "
            f"{'p50 ms':>8s} {'p95 ms':>8s} {'p99 ms':>8s}"
        )
        for name, row in quantiles.items():
            lines.append(
                f"{name:38s} {row['count']:>8d} {row['mean'] * 1e3:>9.3f} "
                f"{_fmt_q(row['p50']):>8s} {_fmt_q(row['p95']):>8s} "
                f"{_fmt_q(row['p99']):>8s}"
            )
    if not (trend or drift or freq or quantiles):
        lines.append("(archive matched no verdicts, alerts, or histograms)")
    return "\n".join(lines)
