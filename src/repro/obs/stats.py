"""Render traces and metric snapshots for ``repro-hmd stats``.

Consumes the artifacts the rest of :mod:`repro.obs` produces — a JSONL
span/event trace (``--trace-out``) and a JSON metrics snapshot
(``--metrics-out``) — and renders the questions a performance
investigation starts with: where did the wall time go per stage, what
did the counters/gauges end at, and how were the latencies distributed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class SpanStat:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    total_seconds: float
    min_seconds: float
    max_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


def aggregate_spans(events: list[dict]) -> list[SpanStat]:
    """Per-name span aggregates, sorted by total time descending."""
    groups: dict[str, list[float]] = {}
    for event in events:
        if event.get("type") == "span" and "dur" in event:
            groups.setdefault(event["name"], []).append(float(event["dur"]))
    stats = [
        SpanStat(name, len(durs), sum(durs), min(durs), max(durs))
        for name, durs in groups.items()
    ]
    return sorted(stats, key=lambda s: s.total_seconds, reverse=True)


def toplevel_wall_seconds(events: list[dict]) -> float:
    """Summed duration of root spans (no parent) — the traced wall time.

    Root spans do not overlap within one thread of one process, so for
    the single-threaded CLI stages their sum is the command's measured
    wall time; nested spans are excluded to avoid double counting.
    Concurrent root spans (multi-worker traces) therefore SUM — the
    result is per-thread wall accounting, not a union of time ranges.
    An empty or events-only trace yields 0.0; spans missing ``dur``
    (foreign or torn records) are ignored, as in
    :func:`aggregate_spans`.
    """
    return sum(
        float(event["dur"])
        for event in events
        if event.get("type") == "span"
        and "dur" in event
        and event.get("parent_id") is None
    )


def span_table(events: list[dict]) -> str:
    """Per-stage latency table of one trace, plus totals footer."""
    stats = aggregate_spans(events)
    n_events = sum(1 for e in events if e.get("type") == "event")
    if not stats:
        return f"Trace summary — no spans recorded ({n_events} point events)"
    wall = toplevel_wall_seconds(events)
    lines = [
        "Trace summary — per-stage wall time",
        f"{'stage':26s} {'count':>6s} {'total s':>9s} {'mean ms':>9s} "
        f"{'min ms':>9s} {'max ms':>9s} {'of wall':>8s}",
    ]
    for s in stats:
        share = f"{100.0 * s.total_seconds / wall:.1f}%" if wall > 0 else "-"
        lines.append(
            f"{s.name:26s} {s.count:>6d} {s.total_seconds:>9.3f} "
            f"{s.mean_seconds * 1e3:>9.2f} {s.min_seconds * 1e3:>9.2f} "
            f"{s.max_seconds * 1e3:>9.2f} {share:>8s}"
        )
    n_roots = sum(
        1
        for e in events
        if e.get("type") == "span" and e.get("parent_id") is None
    )
    lines.append(
        f"traced wall: {wall:.3f}s over {n_roots} root spans; "
        f"{sum(s.count for s in stats)} spans, {n_events} point events "
        "(nested stages overlap their parents)"
    )
    return "\n".join(lines)


def load_metrics(path: str | Path) -> dict:
    """Read a snapshot written by ``Registry.dump`` / ``--metrics-out``."""
    snapshot = json.loads(Path(path).read_text())
    if not isinstance(snapshot, dict):
        raise ValueError(f"metrics file {path} does not hold a snapshot object")
    return snapshot


def histogram_quantile(data: dict, q: float) -> float:
    """Upper-bound estimate of quantile ``q`` from bucket counts.

    NaN-safe by construction: an empty histogram (zero observations) or
    a nonsensical ``q`` yields ``nan`` rather than raising or inventing
    a bucket bound, and data whose observations all landed in the
    implicit +Inf overflow bucket yields ``inf`` — the honest answer
    when every recorded value exceeded the largest finite bound.
    """
    count = data.get("count", 0)
    if count <= 0 or not 0.0 <= q <= 1.0:
        return float("nan")
    target = q * count
    cumulative = 0
    for bound, bucket_count in zip(data.get("buckets", ()), data.get("counts", ())):
        cumulative += bucket_count
        if bucket_count and cumulative >= target:
            return float(bound)
    return float("inf")


#: Backwards-compatible alias (the helper predates its public export).
_histogram_quantile = histogram_quantile


def metrics_table(snapshot: dict) -> str:
    """Counter/gauge summary plus histogram latency digests."""
    lines = ["Metrics summary"]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        for name, data in sorted(counters.items()):
            lines.append(f"  {name:38s} {_num(data['value']):>12s}")
    if gauges:
        lines.append("gauges:")
        for name, data in sorted(gauges.items()):
            lines.append(f"  {name:38s} {_num(data['value']):>12s}")
    if histograms:
        lines.append("histograms:")
        lines.append(
            f"  {'name':38s} {'count':>7s} {'mean ms':>9s} "
            f"{'p50 ms':>9s} {'p95 ms':>9s} {'p99 ms':>9s} {'sum s':>9s}"
        )
        for name, data in sorted(histograms.items()):
            count = data["count"]
            mean = data["sum"] / count if count else 0.0
            p50 = histogram_quantile(data, 0.50)
            p95 = histogram_quantile(data, 0.95)
            p99 = histogram_quantile(data, 0.99)
            lines.append(
                f"  {name:38s} {count:>7d} {mean * 1e3:>9.3f} "
                f"{_ms(p50):>9s} {_ms(p95):>9s} {_ms(p99):>9s} "
                f"{data['sum']:>9.3f}"
            )
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def _num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.3f}"


def _ms(seconds: float) -> str:
    if seconds != seconds:  # NaN: no observations to take a quantile of
        return "-"
    if seconds == float("inf"):
        return "+Inf"
    return f"{seconds * 1e3:.3f}"
