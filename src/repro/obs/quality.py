"""Model-quality and drift observability: reference profiles, divergence
scoring, and streaming calibration telemetry.

The paper's detectors are train-once, but a deployed fleet faces
workload drift and novel malware families that silently rot a model
long before accuracy tables notice.  This module is the measurement
layer for that failure mode:

* :class:`ReferenceProfile` — captured at train time: per-feature
  fixed-bin histograms over the reduced HPC feature windows, a
  prediction-score histogram, a per-app vote-margin histogram, and
  binned calibration counts carrying exact sufficient statistics
  (count, positives, Σscore, Σscore², Σscore·y per bin) so ECE and the
  Brier score are computed *exactly* from the bins, not approximated.
  Serialized to JSON with the same atomic-replace discipline and
  content-addressed SHA-256 identity as :mod:`repro.analysis.cache`.
* :class:`DriftScorer` — PSI (with epsilon smoothing so empty cells
  stay finite) and a histogram-based KS statistic per feature, plus
  score-distribution shift and calibration error.  Everything is a
  deterministic function of integer bin counts on fixed edges: the
  same counts always produce the same score, and identical
  distributions score exactly zero PSI.
* :class:`QualityTracker` — a streaming consumer with sliding live
  windows using the same eviction-by-decrement semantics as
  :class:`~repro.obs.health.SlidingWindowSignals`: each observed
  execution contributes bin-count arrays to a deque; eviction subtracts
  the exact contribution, so windowed drift scores equal a fresh
  accumulation over the surviving executions.  It keeps one global
  window plus one per host (per-host drift for the serving fleet),
  emits ``quality_*`` counters/gauges/histograms, ``quality.drift``
  trace events, and evaluates declarative :class:`QualityAlertRule`\\ s
  (PSI threshold with hold and hysteresis, reusing the
  :class:`~repro.obs.health.AlertState` machine) whose transitions are
  emitted as ``quality.alert`` events — so ``repro-hmd watch`` can gate
  a pipeline on drift exactly like it gates on health.

The tracker never touches verdict computation: monitors built with
``quality=None`` pay one attribute check, and enabling tracking leaves
verdicts bit-identical (asserted in ``benchmarks/bench_quality.py``).

Determinism contract: evaluation time is whatever clock the caller
supplies (event timestamps during replay, a fake clock in tests), time
only moves forward, and all divergence math is exact on fixed bins —
replaying the same stream yields byte-identical alert transitions.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, ClassVar, TextIO

import numpy as np

from repro.ioutil import atomic_write_text, to_jsonable
from repro.obs.archive import DRIFT_RULE
from repro.obs.health import AlertRule, AlertState, parse_alert_spec
from repro.obs.metrics import NULL_REGISTRY, Registry
from repro.obs.trace import NULL_TRACER, Tracer

#: Schema tag written into profiles and quality reports.
QUALITY_SCHEMA_VERSION = 1

#: Signals the tracker exposes (quality alert rules may target any).
QUALITY_SIGNAL_NAMES = (
    "live_windows",
    "executions",
    "max_feature_psi",
    "mean_feature_psi",
    "max_feature_ks",
    "score_psi",
    "score_ks",
    "margin_psi",
    "ece",
    "brier",
)

#: Bucket bounds for the per-feature PSI histogram metric.
PSI_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.15, 0.2, 0.25, 0.5, 1.0, 2.0)

#: Calibration sufficient-statistic columns (exact ECE/Brier from bins).
_CAL_KEYS = ("count", "pos", "sum_score", "sum_score_sq", "sum_score_pos")

_NAN = float("nan")


class QualityError(ValueError):
    """Malformed, missing, or incompatible reference profile."""


# -- binning -----------------------------------------------------------
#
# A histogram with edges e0..eK has K+2 cells: cell 0 is underflow
# (v < e0), cells 1..K are the K equal-width bins (left-closed, with
# the last bin closed on both sides so the reference maximum lands in
# bin K, not overflow), and cell K+1 is overflow (v > eK).  NaN values
# never enter a cell; they are tallied separately so live NaNs are
# visible without poisoning divergence scores.


def _cell_indices(edges: np.ndarray, values: np.ndarray) -> tuple:
    """Map finite ``values`` to cell indices; returns (indices, finite mask)."""
    values = np.asarray(values, dtype=float).ravel()
    ok = ~np.isnan(values)
    v = values[ok]
    idx = np.searchsorted(edges, v, side="right")
    idx[v == edges[-1]] = edges.size - 1
    return idx, ok


def bin_values(edges: np.ndarray, values) -> tuple:
    """Cell counts (underflow, K bins, overflow) and the NaN tally."""
    edges = np.asarray(edges, dtype=float)
    idx, ok = _cell_indices(edges, values)
    counts = np.bincount(idx, minlength=edges.size + 1).astype(np.int64)
    return counts, int(ok.size - idx.size)


def bin_matrix(edges: np.ndarray, values: np.ndarray) -> tuple:
    """Per-feature cell counts for a ``(windows, features)`` matrix.

    Vectorized equivalent of calling :func:`bin_values` once per
    feature column with that feature's edge row: ``edges`` is
    ``(F, K+1)``, ``values`` is ``(W, F)``; returns ``(F, K+2)`` cell
    counts and the per-feature NaN tally.  ``searchsorted(side="right")``
    semantics are reproduced by counting edges <= value, with the same
    reference-maximum clamp into the last closed bin.
    """
    edges = np.asarray(edges, dtype=float)
    values = np.asarray(values, dtype=float)
    n_features, cells = edges.shape[0], edges.shape[1] + 1
    ok = ~np.isnan(values)
    idx = (values[:, :, None] >= edges[None, :, :]).sum(axis=2)
    idx[values == edges[None, :, -1]] = edges.shape[1] - 1
    flat = (idx + np.arange(n_features) * cells)[ok]
    counts = np.bincount(flat, minlength=n_features * cells)
    return (
        counts.reshape(n_features, cells).astype(np.int64),
        (~ok).sum(axis=0),
    )


def _equal_width_edges(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Equal-width edges spanning the finite values.

    A constant column (or no finite evidence at all) would produce
    zero-width bins, so the span is widened to ±0.5 around the single
    value — the constant lands mid-histogram and any live deviation
    shows up as mass in a neighbouring or under/overflow cell.
    """
    values = np.asarray(values, dtype=float).ravel()
    finite = values[np.isfinite(values)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 0.0
    if lo == hi:
        lo, hi = lo - 0.5, hi + 0.5
    return np.linspace(lo, hi, int(n_bins) + 1)


def _psi(ref_counts: np.ndarray, live_counts: np.ndarray, epsilon: float) -> float:
    """Population stability index between two count vectors.

    Cells are smoothed by ``epsilon`` pseudo-counts so empty cells stay
    finite; identical count vectors score exactly 0.0.  NaN when either
    side is empty (no evidence is not evidence of drift).
    """
    ref = np.asarray(ref_counts, dtype=float)
    live = np.asarray(live_counts, dtype=float)
    n_ref, n_live = ref.sum(), live.sum()
    if n_ref <= 0 or n_live <= 0:
        return _NAN
    k = ref.size
    p = (ref + epsilon) / (n_ref + epsilon * k)
    q = (live + epsilon) / (n_live + epsilon * k)
    return float(np.sum((q - p) * np.log(q / p)))


def _ks(ref_counts: np.ndarray, live_counts: np.ndarray) -> float:
    """Histogram KS statistic: max |CDF difference| on the shared cells."""
    ref = np.asarray(ref_counts, dtype=float)
    live = np.asarray(live_counts, dtype=float)
    n_ref, n_live = ref.sum(), live.sum()
    if n_ref <= 0 or n_live <= 0:
        return _NAN
    return float(np.max(np.abs(np.cumsum(ref) / n_ref - np.cumsum(live) / n_live)))


def _psi_rows(
    ref_counts: np.ndarray, live_counts: np.ndarray, epsilon: float
) -> np.ndarray:
    """Row-wise :func:`_psi` over two ``(F, C)`` count matrices.

    Same arithmetic per row as the scalar helper (rows reduce with the
    identical pairwise summation), fused into a handful of array ops so
    per-observation drift scoring doesn't pay F Python round-trips.
    """
    ref = np.asarray(ref_counts, dtype=float)
    live = np.asarray(live_counts, dtype=float)
    n_ref = ref.sum(axis=1, keepdims=True)
    n_live = live.sum(axis=1, keepdims=True)
    k = ref.shape[1]
    with np.errstate(divide="ignore", invalid="ignore"):
        p = (ref + epsilon) / (n_ref + epsilon * k)
        q = (live + epsilon) / (n_live + epsilon * k)
        out = np.sum((q - p) * np.log(q / p), axis=1)
    out[(n_ref.ravel() <= 0) | (n_live.ravel() <= 0)] = _NAN
    return out


def _ks_rows(ref_counts: np.ndarray, live_counts: np.ndarray) -> np.ndarray:
    """Row-wise :func:`_ks` over two ``(F, C)`` count matrices."""
    ref = np.asarray(ref_counts, dtype=float)
    live = np.asarray(live_counts, dtype=float)
    n_ref = ref.sum(axis=1, keepdims=True)
    n_live = live.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.max(
            np.abs(np.cumsum(ref, axis=1) / n_ref - np.cumsum(live, axis=1) / n_live),
            axis=1,
        )
    out[(n_ref.ravel() <= 0) | (n_live.ravel() <= 0)] = _NAN
    return out


# -- reference profile -------------------------------------------------


@dataclass(frozen=True)
class _Contribution:
    """One batch's exact additive contribution to a live window."""

    feature: np.ndarray  # (n_features, cells) int64
    score: np.ndarray  # (cells,) int64
    margin: np.ndarray  # (cells,) int64
    cal: np.ndarray  # (len(_CAL_KEYS), cells) float64
    n_windows: int
    n_nan: int
    n_executions: int = 1

    def merged(self, other: "_Contribution") -> "_Contribution":
        """Exact sum of two contributions (counts are additive)."""
        return _Contribution(
            feature=self.feature + other.feature,
            score=self.score + other.score,
            margin=self.margin + other.margin,
            cal=self.cal + other.cal,
            n_windows=self.n_windows + other.n_windows,
            n_nan=self.n_nan + other.n_nan,
            n_executions=self.n_executions + other.n_executions,
        )


class ReferenceProfile:
    """Fixed-bin training-time distributions a live stream is scored against.

    Built by :func:`build_reference_profile`; all live binning goes
    through :meth:`bin_execution` with the *same* edges and the same
    cell conventions as the build, so a live stream drawn from the
    training distribution scores (near) zero divergence by construction.
    """

    def __init__(
        self,
        feature_names: tuple,
        feature_edges: np.ndarray,
        feature_counts: np.ndarray,
        feature_nan: tuple,
        score_edges: np.ndarray,
        score_counts: np.ndarray,
        margin_edges: np.ndarray,
        margin_counts: np.ndarray,
        calibration: np.ndarray,
        vote_threshold: float = 0.5,
        meta: dict | None = None,
    ) -> None:
        self.feature_names = tuple(str(n) for n in feature_names)
        self.feature_edges = np.asarray(feature_edges, dtype=float)
        self.feature_counts = np.asarray(feature_counts, dtype=np.int64)
        self.feature_nan = tuple(int(n) for n in feature_nan)
        self.score_edges = np.asarray(score_edges, dtype=float)
        self.score_counts = np.asarray(score_counts, dtype=np.int64)
        self.margin_edges = np.asarray(margin_edges, dtype=float)
        self.margin_counts = np.asarray(margin_counts, dtype=np.int64)
        self.calibration = np.asarray(calibration, dtype=float)
        self.vote_threshold = float(vote_threshold)
        self.meta = dict(meta or {})
        f = len(self.feature_names)
        cells = self.feature_edges.shape[1] + 1 if f else 0
        if self.feature_edges.shape[0] != f or self.feature_counts.shape != (f, cells):
            raise QualityError(
                f"profile shape mismatch: {f} features, edges "
                f"{self.feature_edges.shape}, counts {self.feature_counts.shape}"
            )
        if self.calibration.shape != (len(_CAL_KEYS), self.score_cells):
            raise QualityError(
                f"calibration shape {self.calibration.shape} != "
                f"({len(_CAL_KEYS)}, {self.score_cells})"
            )

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    @property
    def feature_cells(self) -> int:
        return self.feature_edges.shape[1] + 1

    @property
    def score_cells(self) -> int:
        return self.score_edges.size + 1

    @property
    def margin_cells(self) -> int:
        return self.margin_edges.size + 1

    @property
    def n_windows(self) -> int:
        """Training windows the per-feature histograms were built from."""
        return int(self.feature_counts[0].sum()) if self.n_features else 0

    # -- live binning --------------------------------------------------
    def bin_execution(
        self, windows, scores, margin: float = _NAN, truth: bool | None = None
    ) -> _Contribution:
        """Bin one execution's reduced windows into an exact contribution.

        ``windows`` is the ``(n_windows, n_features)`` reduced feature
        matrix, ``scores`` the per-window graded malware scores,
        ``margin`` the verdict's vote margin, and ``truth`` the ground
        truth label (when known, it feeds the calibration bins).  Empty
        executions produce an all-zero contribution.
        """
        windows = np.atleast_2d(np.asarray(windows, dtype=float))
        if windows.size == 0:
            windows = windows.reshape(0, self.n_features)
        if windows.shape[1] != self.n_features:
            raise QualityError(
                f"execution has {windows.shape[1]} features, "
                f"profile has {self.n_features}"
            )
        feature, feature_nan = bin_matrix(self.feature_edges, windows)
        n_nan = int(feature_nan.sum())
        # Score binning and calibration share one cell-index pass.
        idx, ok = _cell_indices(self.score_edges, scores)
        score_counts = np.bincount(idx, minlength=self.score_cells).astype(np.int64)
        margin_counts, _ = bin_values(self.margin_edges, margin)
        cal = np.zeros((len(_CAL_KEYS), self.score_cells))
        if truth is not None:
            s = np.asarray(scores, dtype=float).ravel()[ok]
            y = np.full(s.size, float(bool(truth)))
            cells = self.score_cells
            cal[0] = np.bincount(idx, minlength=cells)
            cal[1] = np.bincount(idx, weights=y, minlength=cells)
            cal[2] = np.bincount(idx, weights=s, minlength=cells)
            cal[3] = np.bincount(idx, weights=s * s, minlength=cells)
            cal[4] = np.bincount(idx, weights=s * y, minlength=cells)
        return _Contribution(
            feature=feature,
            score=score_counts,
            margin=margin_counts,
            cal=cal,
            n_windows=int(windows.shape[0]),
            n_nan=n_nan,
        )

    def bin_batch(self, entries: list) -> _Contribution:
        """Bin several executions into one additive contribution.

        ``entries`` is a list of ``(windows, scores, margin, truth)``
        tuples whose ``windows`` are already validated ``(n, F)`` float
        matrices.  Counts equal the sum of per-entry
        :meth:`bin_execution` contributions (integer histograms are
        exactly additive), but the feature matrices are concatenated and
        binned in one vectorized pass — this is what makes deferred
        batch flushing cheaper than per-observation binning.
        """
        windows_all = np.concatenate(
            [windows for windows, _, _, _ in entries]
        ) if entries else np.zeros((0, self.n_features))
        feature, feature_nan = bin_matrix(self.feature_edges, windows_all)
        scores_all = np.concatenate(
            [np.asarray(scores, dtype=float).ravel() for _, scores, _, _ in entries]
        ) if entries else np.zeros(0)
        idx, ok = _cell_indices(self.score_edges, scores_all)
        score_counts = np.bincount(idx, minlength=self.score_cells).astype(np.int64)
        margins = np.array([margin for _, _, margin, _ in entries], dtype=float)
        margin_counts, _ = bin_values(self.margin_edges, margins)
        cal = np.zeros((len(_CAL_KEYS), self.score_cells))
        known = [
            (np.asarray(scores, dtype=float).ravel(), float(bool(truth)))
            for _, scores, _, truth in entries
            if truth is not None
        ]
        if known:
            s = np.concatenate([scores for scores, _ in known])
            y = np.concatenate(
                [np.full(scores.size, label) for scores, label in known]
            )
            cal_idx, cal_ok = _cell_indices(self.score_edges, s)
            s, y = s[cal_ok], y[cal_ok]
            cells = self.score_cells
            cal[0] = np.bincount(cal_idx, minlength=cells)
            cal[1] = np.bincount(cal_idx, weights=y, minlength=cells)
            cal[2] = np.bincount(cal_idx, weights=s, minlength=cells)
            cal[3] = np.bincount(cal_idx, weights=s * s, minlength=cells)
            cal[4] = np.bincount(cal_idx, weights=s * y, minlength=cells)
        return _Contribution(
            feature=feature,
            score=score_counts,
            margin=margin_counts,
            cal=cal,
            n_windows=int(windows_all.shape[0]),
            n_nan=int(feature_nan.sum()),
            n_executions=len(entries),
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": QUALITY_SCHEMA_VERSION,
            "feature_names": list(self.feature_names),
            "feature_edges": self.feature_edges.tolist(),
            "feature_counts": self.feature_counts.tolist(),
            "feature_nan": list(self.feature_nan),
            "score_edges": self.score_edges.tolist(),
            "score_counts": self.score_counts.tolist(),
            "margin_edges": self.margin_edges.tolist(),
            "margin_counts": self.margin_counts.tolist(),
            "calibration": {
                key: self.calibration[i].tolist()
                for i, key in enumerate(_CAL_KEYS)
            },
            "vote_threshold": self.vote_threshold,
            "meta": self.meta,
        }

    @property
    def profile_id(self) -> str:
        """Content-addressed identity (SHA-256 of the canonical JSON)."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    @classmethod
    def from_dict(cls, data: dict) -> "ReferenceProfile":
        if not isinstance(data, dict) or "feature_names" not in data:
            raise QualityError("not a reference profile (missing feature_names)")
        schema = data.get("schema")
        if schema != QUALITY_SCHEMA_VERSION:
            raise QualityError(
                f"unsupported profile schema {schema!r} "
                f"(expected {QUALITY_SCHEMA_VERSION})"
            )
        try:
            cal = data["calibration"]
            return cls(
                feature_names=tuple(data["feature_names"]),
                feature_edges=np.asarray(data["feature_edges"], dtype=float),
                feature_counts=np.asarray(data["feature_counts"], dtype=np.int64),
                feature_nan=tuple(data["feature_nan"]),
                score_edges=np.asarray(data["score_edges"], dtype=float),
                score_counts=np.asarray(data["score_counts"], dtype=np.int64),
                margin_edges=np.asarray(data["margin_edges"], dtype=float),
                margin_counts=np.asarray(data["margin_counts"], dtype=np.int64),
                calibration=np.asarray(
                    [cal[key] for key in _CAL_KEYS], dtype=float
                ),
                vote_threshold=float(data.get("vote_threshold", 0.5)),
                meta=data.get("meta"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise QualityError(f"malformed reference profile: {exc}") from exc

    def save(self, path: str | Path) -> str:
        """Atomically write the profile as JSON; returns its profile_id."""
        data = self.to_dict()
        data["profile_id"] = self.profile_id
        atomic_write_text(Path(path), json.dumps(data, indent=1))
        return data["profile_id"]

    @classmethod
    def load(cls, path: str | Path) -> "ReferenceProfile":
        try:
            data = json.loads(Path(path).read_text())
        except FileNotFoundError as exc:
            raise QualityError(f"reference profile not found: {path}") from exc
        except json.JSONDecodeError as exc:
            raise QualityError(f"profile {path}: invalid JSON ({exc})") from exc
        return cls.from_dict(data)


def build_reference_profile(
    detector,
    dataset,
    n_bins: int = 12,
    vote_threshold: float = 0.5,
    meta: dict | None = None,
) -> ReferenceProfile:
    """Capture a fitted detector's training-time reference distributions.

    ``dataset`` is the (training) :class:`~repro.workloads.dataset.Dataset`
    the profile describes; it is reduced through the detector's fitted
    feature reducer so the per-feature histograms are over exactly the
    features the detector sees at run time.  Vote margins are computed
    per app — each app's window-vote fraction minus ``vote_threshold``
    — matching how monitors derive verdict margins live.
    """
    if not getattr(detector, "fitted_", False):
        raise QualityError("cannot profile an unfitted detector")
    reduced = detector.reducer.transform(dataset)
    features = np.asarray(reduced.features, dtype=float)
    labels = np.asarray(reduced.labels, dtype=float)
    scores = np.asarray(detector.model.decision_scores(features), dtype=float)
    flags = np.asarray(detector.model.predict(features), dtype=float)
    names = tuple(detector.monitored_events)
    if features.shape[1] != len(names):
        raise QualityError(
            f"reduced dataset has {features.shape[1]} features, "
            f"detector monitors {len(names)}"
        )

    feature_edges = np.stack(
        [_equal_width_edges(features[:, f], n_bins) for f in range(len(names))]
    )
    # Same vectorized binning the live tracker uses, so reference and
    # live counts go through one code path (a live stream drawn from the
    # training data scores exactly zero PSI by construction).
    feature_counts, nan_counts = bin_matrix(feature_edges, features)
    feature_nan = [int(n) for n in nan_counts]

    score_edges = _equal_width_edges(scores, n_bins)
    score_counts, _ = bin_values(score_edges, scores)

    margins = [
        float(flags[reduced.app_ids == app].mean()) - float(vote_threshold)
        for app in np.unique(reduced.app_ids)
    ]
    margin_edges = np.linspace(-1.0, 1.0, n_bins + 1)
    margin_counts, _ = bin_values(margin_edges, margins)

    idx, ok = _cell_indices(score_edges, scores)
    s, y = scores[ok], labels[ok]
    cells = score_edges.size + 1
    calibration = np.stack(
        [
            np.bincount(idx, minlength=cells).astype(float),
            np.bincount(idx, weights=y, minlength=cells),
            np.bincount(idx, weights=s, minlength=cells),
            np.bincount(idx, weights=s * s, minlength=cells),
            np.bincount(idx, weights=s * y, minlength=cells),
        ]
    )
    return ReferenceProfile(
        feature_names=names,
        feature_edges=feature_edges,
        feature_counts=feature_counts,
        feature_nan=tuple(feature_nan),
        score_edges=score_edges,
        score_counts=score_counts,
        margin_edges=margin_edges,
        margin_counts=margin_counts,
        calibration=calibration,
        vote_threshold=vote_threshold,
        meta=meta,
    )


# -- divergence scoring ------------------------------------------------


class DriftScorer:
    """Deterministic divergence scores between a profile and live counts.

    All inputs are bin-count arrays on the profile's fixed edges, so
    every score is an exact function of integer counts; ``epsilon`` is
    the PSI smoothing pseudo-count per cell.
    """

    def __init__(self, profile: ReferenceProfile, epsilon: float = 1e-4) -> None:
        self.profile = profile
        self.epsilon = float(epsilon)
        # The reference side of every divergence is fixed for the life
        # of the scorer, so its smoothed distribution, log, and CDF are
        # computed once here; the per-observation hot path
        # (:meth:`window_drift`) then only normalizes the live side.
        eps = self.epsilon
        with np.errstate(divide="ignore", invalid="ignore"):
            ref = np.asarray(profile.feature_counts, dtype=float)
            n = ref.sum(axis=1, keepdims=True)
            self._feat_ref_ok = n.ravel() > 0
            self._feat_p = (ref + eps) / (n + eps * ref.shape[1])
            self._feat_log_p = np.log(self._feat_p)
            self._feat_cdf = np.cumsum(ref, axis=1) / n
            sref = np.asarray(profile.score_counts, dtype=float)
            sn = sref.sum()
            self._score_ref_ok = sn > 0
            self._score_p = (sref + eps) / (sn + eps * sref.size)
            self._score_log_p = np.log(self._score_p)
            self._score_cdf = np.cumsum(sref) / sn
            mref = np.asarray(profile.margin_counts, dtype=float)
            mn = mref.sum()
            self._margin_ref_ok = mn > 0
            self._margin_p = (mref + eps) / (mn + eps * mref.size)
            self._margin_log_p = np.log(self._margin_p)

    def feature_drift(self, live_feature_counts: np.ndarray) -> list:
        """Per-feature PSI and KS against the reference histograms."""
        live = np.asarray(live_feature_counts, dtype=float)
        psi = _psi_rows(self.profile.feature_counts, live, self.epsilon)
        ks = _ks_rows(self.profile.feature_counts, live)
        return [
            {"feature": name, "psi": float(psi[f]), "ks": float(ks[f])}
            for f, name in enumerate(self.profile.feature_names)
        ]

    def window_drift(self, feature_counts, score_counts, cal) -> dict:
        """Feature, score, and calibration signals in one fused pass.

        Hot-path twin of :meth:`feature_drift` + :meth:`score_drift` +
        :meth:`calibration`: identical smoothing and cell arithmetic,
        but the live side is normalized against the precomputed
        reference tensors (``log(q) - log(p)`` in place of
        ``log(q / p)``, equal up to float rounding; identical counts
        still score exactly 0.0 because ``q - p`` is exactly zero).
        """
        eps = self.epsilon
        live = np.asarray(feature_counts, dtype=float)
        n = live.sum(axis=1, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            q = (live + eps) / (n + eps * live.shape[1])
            feat_psi = np.sum((q - self._feat_p) * (np.log(q) - self._feat_log_p), axis=1)
            feat_ks = np.max(
                np.abs(np.cumsum(live, axis=1) / n - self._feat_cdf), axis=1
            )
            bad = ~self._feat_ref_ok | (n.ravel() <= 0)
            feat_psi[bad] = _NAN
            feat_ks[bad] = _NAN
            slive = np.asarray(score_counts, dtype=float)
            sn = slive.sum()
            score_psi = score_ks = _NAN
            if self._score_ref_ok and sn > 0:
                sq = (slive + eps) / (sn + eps * slive.size)
                score_psi = float(
                    np.sum((sq - self._score_p) * (np.log(sq) - self._score_log_p))
                )
                score_ks = float(
                    np.max(np.abs(np.cumsum(slive) / sn - self._score_cdf))
                )
        cal_scores = self.calibration(cal)
        return {
            "feature_psi": feat_psi,
            "feature_ks": feat_ks,
            "score_psi": score_psi,
            "score_ks": score_ks,
            "ece": cal_scores["ece"],
            "brier": cal_scores["brier"],
        }

    def score_drift(self, live_score_counts: np.ndarray) -> dict:
        return {
            "psi": _psi(self.profile.score_counts, live_score_counts, self.epsilon),
            "ks": _ks(self.profile.score_counts, live_score_counts),
        }

    def margin_drift(self, live_margin_counts: np.ndarray) -> dict:
        return {
            "psi": self.margin_psi(live_margin_counts),
            "ks": _ks(self.profile.margin_counts, live_margin_counts),
        }

    def margin_psi(self, live_margin_counts: np.ndarray) -> float:
        """Margin PSI alone — the hot path's per-observation signal
        (the KS twin is only rendered in offline reports)."""
        live = np.asarray(live_margin_counts, dtype=float)
        n = live.sum()
        if not self._margin_ref_ok or n <= 0:
            return _NAN
        eps = self.epsilon
        q = (live + eps) / (n + eps * live.size)
        return float(np.sum((q - self._margin_p) * (np.log(q) - self._margin_log_p)))

    def calibration(self, live_cal: np.ndarray) -> dict:
        """Exact ECE and Brier score from live calibration bins.

        ECE is Σ (n_b/N)·|mean_score_b − frac_pos_b|; Brier is exact
        because labels are 0/1: Σ(s−y)² = Σs² − 2Σs·y + Σy.
        """
        count = np.asarray(live_cal[0], dtype=float)
        n = count.sum()
        if n <= 0:
            return {"ece": _NAN, "brier": _NAN, "count": 0}
        nz = count > 0
        conf = live_cal[2][nz] / count[nz]
        acc = live_cal[1][nz] / count[nz]
        ece = float(np.sum(count[nz] / n * np.abs(conf - acc)))
        brier = float(
            (live_cal[3].sum() - 2.0 * live_cal[4].sum() + live_cal[1].sum()) / n
        )
        return {"ece": ece, "brier": brier, "count": int(n)}


# -- alert rules over drift signals ------------------------------------


@dataclass(frozen=True)
class QualityAlertRule(AlertRule):
    """An :class:`~repro.obs.health.AlertRule` over the drift signals.

    Same comparator/hold/hysteresis semantics and state machine; only
    the valid signal family differs (:data:`QUALITY_SIGNAL_NAMES`).
    """

    signal_names: ClassVar[tuple] = QUALITY_SIGNAL_NAMES


def parse_quality_alert_spec(spec: str) -> QualityAlertRule:
    """Parse an inline ``--quality-alert`` rule specification.

    Same grammar as ``--alert``: ``SIGNAL OP THRESHOLD[:SEVERITY
    [:FOR_S[:CLEAR]]]``, e.g. ``max_feature_psi>=0.25:critical:0:0.1``.
    """
    return parse_alert_spec(spec, rule_cls=QualityAlertRule)


#: Default drift gate installed when tracking is enabled without
#: explicit rules: PSI ≥ 0.25 is the classical "significant population
#: shift" threshold, with a hysteresis clear at 0.1.
DEFAULT_QUALITY_RULES = (
    QualityAlertRule(
        name="max_feature_psi>=0.25",
        signal="max_feature_psi",
        op=">=",
        threshold=0.25,
        severity="critical",
        clear_threshold=0.1,
    ),
)


# -- streaming tracker -------------------------------------------------


class _LiveWindow:
    """One sliding window of execution contributions.

    Mirrors :class:`~repro.obs.health.SlidingWindowSignals`: entries
    carry their exact additive contribution, eviction subtracts it, so
    aggregates always equal a fresh accumulation over the survivors.
    """

    def __init__(self, profile: ReferenceProfile) -> None:
        self._entries: deque = deque()  # (ts, _Contribution)
        self.feature = np.zeros(
            (profile.n_features, profile.feature_cells), dtype=np.int64
        )
        self.score = np.zeros(profile.score_cells, dtype=np.int64)
        self.margin = np.zeros(profile.margin_cells, dtype=np.int64)
        self.cal = np.zeros((len(_CAL_KEYS), profile.score_cells))
        self.n_windows = 0
        self.n_nan = 0
        self.executions = 0

    def _monotone(self, ts: float) -> float:
        # Same clamp as SlidingWindowSignals: eviction pops from the
        # left, so a straggler stamped before the tail (serve/fleet
        # threads finish out of order) is clamped forward.
        return max(float(ts), self._entries[-1][0]) if self._entries else float(ts)

    def observe(self, ts: float, contrib: _Contribution) -> None:
        self._entries.append((self._monotone(ts), contrib))
        self.feature += contrib.feature
        self.score += contrib.score
        self.margin += contrib.margin
        self.cal += contrib.cal
        self.n_windows += contrib.n_windows
        self.n_nan += contrib.n_nan
        self.executions += contrib.n_executions

    def evict(self, now: float, window_s: float) -> None:
        cutoff = now - window_s
        while self._entries and self._entries[0][0] <= cutoff:
            _, contrib = self._entries.popleft()
            self.feature -= contrib.feature
            self.score -= contrib.score
            self.margin -= contrib.margin
            self.cal -= contrib.cal
            self.n_windows -= contrib.n_windows
            self.n_nan -= contrib.n_nan
            self.executions -= contrib.n_executions


class QualityTracker:
    """Streams live executions against a reference profile.

    The in-process hook (``quality=`` on the monitors and the service)
    calls :meth:`observe_execution` with the reduced feature windows,
    per-window scores, and the verdict's vote margin; the tracker bins
    them, slides its windows, recomputes drift signals, and advances
    the alert state machines.  One global window drives alerting; a
    per-host window map provides per-host drift signals for the fleet.

    Args:
        profile: the training-time :class:`ReferenceProfile`.
        rules: :class:`QualityAlertRule`\\ s evaluated on the global
            signals (defaults to :data:`DEFAULT_QUALITY_RULES`).
        window_s: trailing live-window length in seconds.
        min_windows: drift signals are NaN until the live window holds
            this many feature windows.  Defaults (``None``) to 75% of
            the profile's reference window count: within-app windows
            are strongly correlated, so a live window covering only a
            few applications is a genuinely different mixture than the
            full training corpus and PSI stays high until coverage
            builds — the adaptive floor keeps warm-up silent (NaN never
            breaches a rule) without a magic constant that breaks at a
            different corpus scale.
        min_executions: executions (≈ distinct applications) the window
            additionally needs before any drift signal reports; margin
            PSI (one sample per execution) is gated on this alone.
        eval_interval_s: minimum event-time spacing between full drift
            evaluations.  Binning is per-observation and exact, but
            re-scoring the whole window and walking the rule state
            machines on every execution of a burst is pure overhead on
            the verdict path (the window barely changed), so bursts
            share one evaluation — the same evaluation-interval pattern
            every metrics backend uses.  ``0`` evaluates on every
            observation; :meth:`tick` and :meth:`report` always
            evaluate, so a final dump never misses a breach.
        tracer: receives ``quality.drift`` (one per evaluation, at most
            one per ``eval_interval_s``) and ``quality.alert`` (one per
            rule transition) events.
        metrics: quality counters/gauges/histograms land here.
        stream: optional text stream for one-line transition notices.
        clock: time source when observations carry no timestamp.
        archive_sink: optional :class:`~repro.obs.archive.ArchiveSink`
            fed the same drift observations and transitions the tracer
            records (identical timestamps and values), so a live-archived
            run dedupes against re-ingesting its own dumped trace.
    """

    def __init__(
        self,
        profile: ReferenceProfile,
        rules: tuple | list | None = None,
        window_s: float = 60.0,
        min_windows: int | None = None,
        min_executions: int = 8,
        eval_interval_s: float = 1.0,
        tracer: Tracer | None = None,
        metrics: Registry | None = None,
        stream: TextIO | None = None,
        clock: Callable[[], float] = time.time,
        archive_sink=None,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if eval_interval_s < 0:
            raise ValueError(
                f"eval_interval_s must be >= 0, got {eval_interval_s}"
            )
        self.profile = profile
        self.scorer = DriftScorer(profile)
        self.window_s = float(window_s)
        self.eval_interval_s = float(eval_interval_s)
        self._last_eval: float | None = None
        self._pending: list = []  # (ts, host, windows, scores, margin, truth)
        if min_windows is None:
            min_windows = max(64, round(0.75 * profile.n_windows))
        self.min_windows = int(min_windows)
        self.min_executions = int(min_executions)
        self.states = [
            AlertState(rule)
            for rule in (DEFAULT_QUALITY_RULES if rules is None else rules)
        ]
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.stream = stream
        self.clock = clock
        self.archive_sink = archive_sink
        self.window = _LiveWindow(profile)
        self.hosts: dict = {}
        self.last_signals: dict = {}
        self.total_executions = 0
        self.total_windows = 0
        self.total_nan = 0
        self._now: float | None = None
        self._lock = threading.RLock()
        self._c_execs = self.metrics.counter(
            "quality_executions_total", "executions scored against the profile"
        )
        self._c_windows = self.metrics.counter(
            "quality_windows_total", "feature windows scored against the profile"
        )
        self._c_nan = self.metrics.counter(
            "quality_nan_values_total", "NaN feature values excluded from binning"
        )
        self._c_fired = self.metrics.counter(
            "quality_alerts_fired_total", "drift rules entering the firing state"
        )
        self._c_cleared = self.metrics.counter(
            "quality_alerts_cleared_total", "drift rules returning to ok"
        )
        self._g_max_psi = self.metrics.gauge(
            "quality_max_feature_psi", "worst per-feature PSI in the live window"
        )
        self._g_score_psi = self.metrics.gauge(
            "quality_score_psi", "prediction-score PSI in the live window"
        )
        self._g_ece = self.metrics.gauge(
            "quality_ece", "expected calibration error in the live window"
        )
        self._h_psi = self.metrics.histogram(
            "quality_feature_psi",
            "per-feature PSI at each evaluation",
            buckets=PSI_BUCKETS,
        )

    # -- feeding -------------------------------------------------------
    def observe_execution(
        self,
        host: str,
        windows,
        scores,
        margin: float = _NAN,
        truth: bool | None = None,
        ts: float | None = None,
    ) -> None:
        """Score one execution's reduced windows against the profile.

        The observation itself is a cheap validated append — binning is
        deferred to the next evaluation (:meth:`_flush` batches every
        pending execution into one vectorized pass), keeping the
        verdict path's per-execution cost flat no matter how expensive
        drift scoring is.
        """
        windows = np.atleast_2d(np.asarray(windows, dtype=float))
        if windows.size == 0:
            windows = windows.reshape(0, self.profile.n_features)
        if windows.shape[1] != self.profile.n_features:
            raise QualityError(
                f"execution has {windows.shape[1]} features, "
                f"profile has {self.profile.n_features}"
            )
        with self._lock:
            now = self.clock() if ts is None else float(ts)
            self._now = now if self._now is None else max(self._now, now)
            now = self._now
            self._pending.append((now, host, windows, scores, margin, truth))
            self.total_executions += 1
            self.total_windows += int(windows.shape[0])
            self._c_execs.inc()
            self._c_windows.inc(int(windows.shape[0]))
            if (
                self._last_eval is None
                or now - self._last_eval >= self.eval_interval_s
            ):
                self._evaluate(now, host)

    def _flush(self) -> None:
        """Bin every pending observation into the live windows.

        Pending executions are grouped by host, each group is binned in
        one batched pass, and the global window receives the exact sum
        of the group contributions.  The whole batch is stamped with its
        newest timestamp, so eviction is batch-granular: entries leave
        the window at most one evaluation interval later than they
        would under per-observation stamping.
        """
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        batch_ts = pending[-1][0]
        groups: dict = {}
        for _, host, windows, scores, margin, truth in pending:
            groups.setdefault(host, []).append((windows, scores, margin, truth))
        total = None
        for host, entries in groups.items():
            contrib = self.profile.bin_batch(entries)
            if host:
                if host not in self.hosts:
                    self.hosts[host] = _LiveWindow(self.profile)
                self.hosts[host].observe(batch_ts, contrib)
            total = contrib if total is None else total.merged(contrib)
        self.window.observe(batch_ts, total)
        if total.n_nan:
            self.total_nan += total.n_nan
            self._c_nan.inc(total.n_nan)

    def tick(self, now: float | None = None) -> dict:
        """Re-evaluate without new evidence (windows still slide)."""
        with self._lock:
            at = self.clock() if now is None else float(now)
            self._now = at if self._now is None else max(self._now, at)
            self._evaluate(self._now, host=None)
            return dict(self.last_signals)

    # -- signals -------------------------------------------------------
    def _window_signals(self, window: _LiveWindow, now: float) -> tuple:
        window.evict(now, self.window_s)
        signals = {
            "live_windows": float(window.n_windows),
            "executions": float(window.executions),
            "max_feature_psi": _NAN,
            "mean_feature_psi": _NAN,
            "max_feature_ks": _NAN,
            "score_psi": _NAN,
            "score_ks": _NAN,
            "margin_psi": _NAN,
            "ece": _NAN,
            "brier": _NAN,
        }
        features = []
        if (
            window.n_windows >= self.min_windows
            and window.executions >= self.min_executions
        ):
            drift = self.scorer.window_drift(window.feature, window.score, window.cal)
            psi, ks = drift["feature_psi"], drift["feature_ks"]
            features = [
                {"feature": name, "psi": float(psi[f]), "ks": float(ks[f])}
                for f, name in enumerate(self.profile.feature_names)
            ]
            signals["max_feature_psi"] = max(f["psi"] for f in features)
            signals["mean_feature_psi"] = float(psi.sum()) / psi.size
            signals["max_feature_ks"] = max(f["ks"] for f in features)
            signals["score_psi"] = drift["score_psi"]
            signals["score_ks"] = drift["score_ks"]
            signals["ece"] = drift["ece"]
            signals["brier"] = drift["brier"]
        if window.executions >= self.min_executions:
            signals["margin_psi"] = self.scorer.margin_psi(window.margin)
        return signals, features

    def signals(self, now: float | None = None) -> dict:
        """Global drift signals at ``now`` (NaN below evidence floors)."""
        with self._lock:
            at = self._now if now is None else float(now)
            if at is None:
                at = self.clock()
            self._flush()
            values, _ = self._window_signals(self.window, at)
            return values

    def host_signals(self, host: str, now: float | None = None) -> dict:
        """Drift signals for one host's live window."""
        with self._lock:
            at = self._now if now is None else float(now)
            if at is None:
                at = self.clock()
            self._flush()
            if host not in self.hosts:
                raise KeyError(f"no quality window for host {host!r}")
            values, _ = self._window_signals(self.hosts[host], at)
            return values

    # -- evaluation ----------------------------------------------------
    def _evaluate(self, now: float, host: str | None) -> None:
        self._last_eval = now
        self._flush()
        values, features = self._window_signals(self.window, now)
        self.last_signals = values
        worst = ""
        if features:
            worst = max(features, key=lambda f: f["psi"])["feature"]
            for f in features:
                self._h_psi.observe(f["psi"])
            self._g_max_psi.set(values["max_feature_psi"])
            self._g_score_psi.set(values["score_psi"])
            if not math.isnan(values["ece"]):
                self._g_ece.set(values["ece"])
        # Building the drift event costs a second full window scoring
        # (the per-host PSI), so skip it entirely when nobody consumes
        # it — rule evaluation below never depends on the event.
        emit_drift = self.tracer is not NULL_TRACER or self.archive_sink is not None
        if host is not None and emit_drift:
            # The event carries the global-window signals (what the
            # alert rules evaluate) plus the observing host's own window
            # PSI — per-host windows are smaller, so the host signal
            # stays NaN until that host alone accumulates enough
            # evidence, which is exactly when a per-host claim is sound.
            host_psi = _NAN
            if host and host in self.hosts:
                host_values, _ = self._window_signals(self.hosts[host], now)
                host_psi = host_values["max_feature_psi"]
            self.tracer.event(
                "quality.drift",
                ts=now,
                host=host,
                worst_feature=worst,
                host_max_feature_psi=host_psi,
                **values,
            )
            if self.archive_sink is not None:
                # Mirror exactly what normalize_events derives from the
                # quality.drift trace event, so live archiving and trace
                # re-ingest produce one identical (deduplicated) segment.
                self.archive_sink.observe_alert(
                    ts=now,
                    rule=DRIFT_RULE,
                    host="*",
                    severity="info",
                    state="observation",
                    value=values["max_feature_psi"],
                )
                if host:
                    self.archive_sink.observe_alert(
                        ts=now,
                        rule=DRIFT_RULE,
                        host=host,
                        severity="info",
                        state="observation",
                        value=host_psi,
                    )
        for state in self.states:
            transition = state.update(values.get(state.rule.signal, _NAN), now)
            if transition is None:
                continue
            if transition["state"] == "firing":
                self._c_fired.inc()
            else:
                self._c_cleared.inc()
            self.tracer.event("quality.alert", host="*", **transition)
            if self.archive_sink is not None:
                self.archive_sink.observe_alert(
                    ts=transition["ts"],
                    rule=transition["rule"],
                    host="*",
                    severity=transition["severity"],
                    state=transition["state"],
                    value=transition["value"],
                )
            if self.stream is not None:
                rule = state.rule
                print(
                    f"[quality] {transition['state'].upper():7s} "
                    f"{rule.severity:8s} {rule.name}: "
                    f"{rule.signal} {rule.op} {rule.threshold:g} "
                    f"(value {transition['value']:.4g} at t={transition['ts']:.3f})",
                    file=self.stream,
                )

    # -- results -------------------------------------------------------
    def drift_fired(self) -> bool:
        """Whether any drift rule has ever fired."""
        return any(state.fired_count for state in self.states)

    def critical_fired(self) -> bool:
        """Whether any critical drift rule has ever fired (CI exit gate)."""
        return any(
            state.rule.severity == "critical" and state.fired_count
            for state in self.states
        )

    def report(self) -> dict:
        """JSON-ready final quality report (``--quality-out``).

        Runs a full evaluation first: observations that landed inside
        the last ``eval_interval_s`` still advance the rule state
        machines before the final alert states are rendered.
        """
        with self._lock:
            now = self._now if self._now is not None else self.clock()
            self._evaluate(now, host=None)
            values, features = self._window_signals(self.window, now)
            hosts = {}
            for host in sorted(self.hosts):
                host_values, _ = self._window_signals(self.hosts[host], now)
                hosts[host] = host_values
            return {
                "schema": QUALITY_SCHEMA_VERSION,
                "profile_id": self.profile.profile_id,
                "window_s": self.window_s,
                "min_windows": self.min_windows,
                "evaluated_at": now,
                "signals": values,
                "features": features,
                "hosts": hosts,
                "totals": {
                    "executions": self.total_executions,
                    "windows": self.total_windows,
                    "nan_values": self.total_nan,
                },
                "alerts": [state.to_dict() for state in self.states],
                "drift_fired": self.drift_fired(),
                "critical_fired": self.critical_fired(),
            }

    def dump(self, path: str | Path) -> None:
        """Atomically write the final quality report to ``path`` as JSON.

        The payload is coerced to native Python types first: numpy
        scalars leaking into ``json.dumps(..., default=str)`` used to be
        silently stringified, corrupting downstream consumers' types.
        """
        atomic_write_text(path, json.dumps(to_jsonable(self.report()), indent=1))


def _fmt_signal(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "-"
    return f"{value:.4g}"


def quality_table(report: dict) -> str:
    """Render a quality report as a terminal table."""
    totals = report["totals"]
    lines = [
        f"Quality — window {report['window_s']:g}s, "
        f"{totals['executions']} executions / {totals['windows']} windows "
        f"scored against profile {report['profile_id'][:12]}"
    ]
    lines.append("signals:")
    for name in QUALITY_SIGNAL_NAMES:
        lines.append(
            f"  {name:26s} {_fmt_signal(report['signals'].get(name, _NAN)):>12s}"
        )
    if report["features"]:
        lines.append("features:")
        lines.append(f"  {'feature':38s} {'psi':>9s} {'ks':>9s}")
        for row in sorted(
            report["features"], key=lambda f: -f["psi"] if f["psi"] == f["psi"] else 0
        ):
            lines.append(
                f"  {row['feature']:38s} {_fmt_signal(row['psi']):>9s} "
                f"{_fmt_signal(row['ks']):>9s}"
            )
    if report["alerts"]:
        lines.append("alerts:")
        for alert in report["alerts"]:
            rule = alert["rule"]
            lines.append(
                f"  {rule['name']:38s} {rule['severity']:8s} {alert['state']:7s} "
                f"fired {alert['fired_count']}"
            )
    return "\n".join(lines)
