"""One code path for matrix progress: stderr lines and trace events.

The CLI used to print bespoke per-cell progress lines; trace-enabled
runs would have needed a second callback doing almost the same thing.
:class:`MatrixProgressSink` is the single progress consumer: wire it to
a runner's ``progress`` argument and it renders a stderr line (when a
stream is given) and records a ``matrix.cell`` trace event (when the
tracer is enabled) for every completed grid cell — cache hits and
trained cells alike.  Cell *metrics* (cached/computed counters, fit and
eval histograms) live in ``MatrixRunner._note`` so they are counted on
every instrumented run, CLI or programmatic.
"""

from __future__ import annotations

from typing import TextIO

from repro.obs.metrics import NULL_REGISTRY, Registry
from repro.obs.trace import NULL_TRACER, Tracer


class MatrixProgressSink:
    """Per-cell progress consumer for serial and parallel matrix runs.

    Args:
        total: grid cells expected (for ``[ 3/96]`` style prefixes).
        tracer: receives one ``matrix.cell`` event per completed cell.
        metrics: counts progress lines emitted (the runner itself owns
            the per-cell cached/computed counters).
        stream: text stream for human-readable progress lines, or None
            to stay silent (trace events are still recorded).
    """

    def __init__(
        self,
        total: int,
        tracer: Tracer | None = None,
        metrics: Registry | None = None,
        stream: TextIO | None = None,
    ) -> None:
        self.total = total
        self.done = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stream = stream
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._c_lines = registry.counter(
            "progress_lines_total", "stderr progress lines rendered"
        )

    def __call__(self, timing) -> None:
        """Consume one :class:`~repro.analysis.matrix.MatrixTiming`."""
        self.done += 1
        self.tracer.event(
            "matrix.cell",
            config=timing.name,
            kind=timing.kind,
            cached=timing.cached,
            fit_seconds=timing.fit_seconds,
            eval_seconds=timing.eval_seconds,
            index=self.done,
            total=self.total,
        )
        if self.stream is not None:
            source = (
                "cache"
                if timing.cached
                else f"fit {timing.fit_seconds:.2f}s eval {timing.eval_seconds:.2f}s"
            )
            print(
                f"[{self.done:>3d}/{self.total}] {timing.name:26s} {source}",
                file=self.stream,
            )
            self._c_lines.inc()
