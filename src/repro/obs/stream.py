"""Streaming readers for live telemetry artifacts.

``--trace-out`` and ``--metrics-out`` were designed as *post-hoc*
artifacts: write the file at exit, render it with ``repro-hmd stats``.
Live health monitoring inverts that — ``repro-hmd watch`` must consume
the same files *while the producing run is still appending to them*.
Two followers make that safe:

* :class:`TraceFollower` tails a JSONL trace incrementally.  Each
  :meth:`~TraceFollower.poll` returns only the complete events appended
  since the previous poll; a trailing line without its newline (the
  producer is mid-write, or crashed mid-write) is buffered, not parsed,
  exactly mirroring :func:`~repro.obs.trace.load_trace`'s tolerance for
  crash-truncated tails.  Rotation or truncation (the file shrank or was
  replaced) resets the follower to the start of the new file instead of
  reading garbage from a stale offset.
* :class:`MetricsFollower` re-reads a JSON metrics snapshot whenever it
  changes and reports the *delta* since the last good snapshot via
  :func:`~repro.obs.metrics.snapshot_delta`, so cumulative counters and
  histograms can be folded into a sliding window without double
  counting.  A half-written snapshot (producer mid-dump) parses as
  garbage and is simply skipped until the next poll.

Neither follower ever raises on a missing file — a watcher may start
before the run it is watching.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.metrics import snapshot_delta

#: How many leading bytes fingerprint a followed file.  A rewrite whose
#: first ``_HEAD_FINGERPRINT_BYTES`` bytes coincide with the old
#: content's is indistinguishable from an append — acceptable for JSONL
#: traces, whose first line carries per-run values (timestamps, pids).
_HEAD_FINGERPRINT_BYTES = 64


class TraceFollower:
    """Incrementally read new events from a growing JSONL trace.

    Beyond rotation (new inode) and shrinking truncation, the follower
    also detects *in-place rewrites that regrow past the old offset*: a
    trace truncated and re-filled between two polls keeps its
    ``(st_dev, st_ino)`` signature and can reach ``size >= offset``, so
    offset arithmetic alone would silently resume mid-file and yield
    torn events.  A fingerprint of the file's first bytes is re-verified
    on every poll; when the head no longer matches, the follower resets
    to the start of the new content.

    Args:
        path: trace file to follow; may not exist yet.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._offset = 0
        self._signature: tuple[int, int] | None = None
        self._partial = b""
        self._head = b""

    def _stat_signature(self) -> tuple[int, int] | None:
        try:
            stat = os.stat(self.path)
        except OSError:
            return None
        return (stat.st_dev, stat.st_ino)

    def poll(self, flush: bool = False) -> list[dict]:
        """Return events appended since the last poll.

        A final line with no terminating newline stays buffered for the
        next poll — unless ``flush`` is True, in which case it is parsed
        if it decodes (the ``--once`` / end-of-run case, where no more
        bytes are coming).  Undecodable complete lines are skipped, like
        :func:`~repro.obs.trace.load_trace`.
        """
        signature = self._stat_signature()
        if signature is None:
            return []
        if signature != self._signature:
            # New file (first poll, or the trace was rotated/replaced).
            self._signature = signature
            self._offset = 0
            self._partial = b""
            self._head = b""
        try:
            with open(self.path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                head = handle.read(min(size, _HEAD_FINGERPRINT_BYTES))
                if size < self._offset or not head.startswith(self._head):
                    # Truncated in place — or truncated *and regrown past
                    # the old offset*, which size alone cannot see but
                    # the head fingerprint can: start over.
                    self._offset = 0
                    self._partial = b""
                self._head = head
                handle.seek(self._offset)
                chunk = handle.read()
                self._offset = handle.tell()
        except OSError:
            return []
        buffer = self._partial + chunk
        lines = buffer.split(b"\n")
        self._partial = lines.pop()
        if flush and self._partial:
            lines.append(self._partial)
            self._partial = b""
        events = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
        return events


class MetricsFollower:
    """Follow a JSON metrics snapshot file and report per-poll deltas.

    Attributes:
        latest: the last snapshot that parsed successfully (None until
            the first good read).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.latest: dict | None = None
        self._last_raw: bytes | None = None

    def poll(self) -> dict | None:
        """Return the change since the previous good snapshot, or None.

        None means "nothing new": the file is missing, unchanged, or
        currently half-written.  Counters and histogram bucket counts in
        the returned delta are the exact increments since the last good
        snapshot (see :func:`~repro.obs.metrics.snapshot_delta`), so
        absorbing every delta reconstructs the cumulative state.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return None
        if raw == self._last_raw:
            return None
        try:
            snapshot = json.loads(raw)
        except json.JSONDecodeError:
            return None
        if not isinstance(snapshot, dict):
            return None
        self._last_raw = raw
        previous, self.latest = self.latest, snapshot
        if previous is None:
            return snapshot
        return snapshot_delta(previous, snapshot)
