"""Span-based tracing with zero-dependency JSONL output.

The paper's argument is about *run-time* cost — 10 ms sampling windows,
detection latency, counter budgets — so the reproduction must be able to
answer "where did the wall time go" for its own pipeline.  A
:class:`Tracer` hands out context-manager :class:`Span` objects that
record monotonic durations, wall-clock start times, and parent/child
nesting (per-thread stacks), plus point-in-time events for things that
have no duration (a verdict, a completed grid cell).

Everything is a no-op by default: a :class:`Tracer` built with
``enabled=False`` (or the shared :data:`NULL_TRACER`) returns one shared
null span and never allocates, so instrumented code paths cost a single
attribute check when tracing is off.

Worker processes each build their own tracer and ship drained event
lists back to the parent, which merges them with :meth:`Tracer.absorb`
— events carry ``pid``/``tid`` so merged traces stay attributable.

Serialization is JSON Lines: one event object per line, so a crash
mid-write loses at most the final line and :func:`load_trace` can still
read everything before it.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path

#: Schema tag written into dumped traces (bump on incompatible change).
TRACE_SCHEMA_VERSION = 1


class _NullSpan:
    """Shared do-nothing span returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


#: The one null span every disabled tracer hands out.
NULL_SPAN = _NullSpan()


class Span:
    """One live span: measures its own duration and records parentage.

    Use as a context manager (``with tracer.span("matrix.fit", ...)``);
    the event is emitted on exit.  :meth:`set` attaches attributes
    discovered mid-span (e.g. a result size).
    """

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_start", "_wall")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent_id: int | None = None
        self._start = 0.0
        self._wall = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        event = {
            "type": "span",
            "name": self.name,
            "ts": self._wall,
            "dur": duration,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.attrs:
            event["attrs"] = self.attrs
        self._tracer._emit(event)
        return False


class Tracer:
    """Collects span and point events into an in-memory buffer.

    Args:
        enabled: when False every call is a near-zero no-op — ``span``
            returns the shared :data:`NULL_SPAN` and ``event`` returns
            immediately, so instrumentation can stay in place
            permanently.

    Thread safety: the event buffer is lock-protected and the span
    stack is per-thread, so concurrent threads trace independently.
    Process safety comes from per-worker tracers merged with
    :meth:`absorb` (events are plain dicts and pickle cheaply).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- internals -----------------------------------------------------
    def _next_id(self) -> int:
        return next(self._ids)

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    # -- recording API -------------------------------------------------
    def span(self, name: str, **attrs):
        """A new context-manager span (or the null span when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, ts: float | None = None, **attrs) -> None:
        """Record a point-in-time event (no duration).

        ``ts`` overrides the wall-clock timestamp; callers that fan the
        same observation out to several sinks (e.g. a trace event plus
        an archive record) pass one shared ``time.time()`` so every copy
        carries the identical timestamp.
        """
        if not self.enabled:
            return
        event = {
            "type": "event",
            "name": name,
            "ts": time.time() if ts is None else ts,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if attrs:
            event["attrs"] = attrs
        self._emit(event)

    # -- buffer management ---------------------------------------------
    @property
    def events(self) -> list[dict]:
        """A snapshot copy of the buffered events."""
        with self._lock:
            return list(self._events)

    def drain(self) -> list[dict]:
        """Remove and return all buffered events (worker hand-off)."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def absorb(self, events: list[dict]) -> None:
        """Merge events drained from another tracer (e.g. a worker)."""
        if not events:
            return
        with self._lock:
            self._events.extend(events)

    def dump(self, path: str | Path, append: bool = False) -> int:
        """Write the buffer as JSON Lines; returns the event count.

        Contract: with ``append=False`` (the default) an existing file
        at ``path`` is **overwritten** — the file afterwards contains
        exactly this buffer.  With ``append=True`` events are appended
        after any existing content, so a long-running service that
        periodically ``drain()``\\ s and dumps accumulates one growing
        trace instead of losing earlier events.  Parent directories are
        created either way; the buffer itself is left untouched (pair
        with :meth:`drain` when appending to avoid duplicate lines).
        """
        events = self.events
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a" if append else "w") as handle:
            for event in events:
                handle.write(json.dumps(event, default=str))
                handle.write("\n")
        return len(events)


#: Shared disabled tracer — the default for every instrumented component.
NULL_TRACER = Tracer(enabled=False)


def load_trace(path: str | Path) -> list[dict]:
    """Read a JSONL trace back into a list of event dicts.

    A line that does not decode (e.g. the tail of a file truncated by a
    crash mid-write) is skipped rather than fatal — every complete line
    before it is still returned.
    """
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events
